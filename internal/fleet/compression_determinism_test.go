package fleet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"autoindex/internal/querystore"
)

// compressionSamples builds the standard fleet at the given worker count,
// replays its workload, and renders every tenant's compressed workload
// sample as one string.
func compressionSamples(t *testing.T, workers int) string {
	t.Helper()
	spec := Spec{Databases: 4, MixedTiers: true, Seed: 20170301, UserIndexes: true, Workers: workers}
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOpsConfig()
	cfg.Days = 2
	cfg.StatementsPerHour = 12
	cfg.NewTenantEvery = 0
	if _, err := f.RunOps(Spec{Seed: spec.Seed, UserIndexes: true}, cfg); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tn := range f.Tenants {
		since := tn.DB.Clock().Now().Add(-48 * time.Hour)
		sample := tn.DB.QueryStore().CompressedTopByCPU(since, 20, querystore.CompressionOptions{
			Rand: tn.DB.DeriveRNG("dta/compress"),
		})
		fmt.Fprintf(&b, "tenant=%s n=%d\n", tn.DB.Name(), len(sample))
		for _, q := range sample {
			fmt.Fprintf(&b, "  hash=%d execs=%d cpu=%.6f weight=%.6f\n",
				q.QueryHash, q.Executions, q.TotalCPU, q.Weight)
		}
	}
	return b.String()
}

// TestCompressedWorkloadDeterministicAcrossWorkers pins the compression
// sampler's determinism contract: the weighted representative sample a
// tenant's recommender sees derives only from that tenant's Query Store
// and its own name-keyed RNG stream, so the sampled hashes and weights
// are byte-identical whether the fleet ran on one worker or eight.
func TestCompressedWorkloadDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation is slow")
	}
	s1 := compressionSamples(t, 1)
	s8 := compressionSamples(t, 8)
	if s1 != s8 {
		t.Errorf("compressed workload sample differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", s1, s8)
	}
	if !strings.Contains(s1, "hash=") {
		t.Fatal("no sampled queries; workload replay produced an empty Query Store")
	}
}
