package scenario

import (
	"errors"
	"sort"
	"strings"

	"autoindex/internal/controlplane"
	"autoindex/internal/core"
	"autoindex/internal/engine"
	"autoindex/internal/fleet"
	"autoindex/internal/workload"
)

// Mid-run schema-migration tuning: the window opens after the tuner has
// recommendations in flight and closes early enough that the post-race
// fallout (Error transitions, force-dropped indexes) settles inside the
// run.
const (
	migrationDatabases    = 3
	migrationDays         = 6
	migrationStmtsPerHour = 15
	migrationWindowStart  = 36
	migrationWindowEnd    = 96
	migrationsPerTenant   = 3
)

type migrationScenario struct{}

func (migrationScenario) Name() string { return "schema-migration" }
func (migrationScenario) Describe() string {
	return "customer column drops/renames race in-flight recommendations through the state machine"
}

// migrationState accumulates what the hooks did, for the verdict.
type migrationState struct {
	dropped      int
	renamed      int
	racedIDs     map[string]bool
	migratedCols map[string]int // migrations performed, per database
}

// midFlight reports a record the state machine is actively working on.
func midFlight(r *controlplane.Record) bool {
	return !r.State.Terminal() && r.State != controlplane.StateActive
}

// migrationTarget picks, deterministically, the column a tenant's next
// migration hits: the first eligible key column of the lowest-ID
// non-terminal create recommendation (mid-flight ones first — those are
// the races the scenario exists to drive).
func migrationTarget(tn *workload.Tenant, store controlplane.Store) (string, string) {
	name := tn.DB.Name()
	recs := store.Records(func(r *controlplane.Record) bool {
		return strings.EqualFold(r.Database, name) &&
			r.Action == core.ActionCreateIndex && !r.State.Terminal()
	})
	sort.Slice(recs, func(i, j int) bool {
		mi, mj := midFlight(recs[i]), midFlight(recs[j])
		if mi != mj {
			return mi
		}
		return recs[i].ID < recs[j].ID
	})
	for _, r := range recs {
		for _, col := range r.Index.KeyColumns {
			if eligibleColumn(tn.DB, r.Index.Table, col) {
				return r.Index.Table, col
			}
		}
	}
	return "", ""
}

// eligibleColumn: exists, not the synthetic PK, not already migrated.
func eligibleColumn(db *engine.Database, table, col string) bool {
	if strings.EqualFold(col, "id") || strings.HasSuffix(strings.ToLower(col), "_v2") {
		return false
	}
	def := db.TableDefPtr(table)
	if def == nil || def.ColumnIndex(col) < 0 {
		return false
	}
	for _, pk := range def.PrimaryKey {
		if strings.EqualFold(pk, col) {
			return false
		}
	}
	return true
}

// migrate executes one customer migration against the tenant,
// alternating drops and renames. Drops blocked by a user index
// (ErrColumnInUse) fall back to a rename — exactly what a customer's
// ALTER would do. Returns false if the DDL could not be applied.
func migrate(tn *workload.Tenant, table, col string, nth int) (dropped bool, ok bool) {
	if nth%2 == 0 {
		err := tn.DB.DropColumn(table, col)
		if err == nil {
			return true, true
		}
		if !errors.Is(err, engine.ErrColumnInUse) {
			return false, false
		}
	}
	return false, tn.DB.RenameColumn(table, col, col+"_v2") == nil
}

// hookMigrations drives the per-hour migration window.
func (st *migrationState) hook(ctx *fleet.OpsHookContext) {
	if ctx.Hour < migrationWindowStart || ctx.Hour > migrationWindowEnd {
		return
	}
	total := st.dropped + st.renamed
	for _, tn := range ctx.Fleet.Tenants {
		if st.perTenant(tn) >= migrationsPerTenant {
			continue
		}
		table, col := migrationTarget(tn, ctx.Store)
		if table == "" && ctx.Hour == migrationWindowEnd && total == 0 {
			// Nothing in flight the whole window (tiny fleets can be
			// quiet): migrate an arbitrary eligible column so the
			// cascade machinery is exercised regardless.
			table, col = fallbackTarget(tn)
		}
		if table == "" {
			continue
		}
		// Capture the raced set before the DDL invalidates it.
		name := tn.DB.Name()
		for _, r := range ctx.Store.Records(func(r *controlplane.Record) bool {
			return strings.EqualFold(r.Database, name) && midFlight(r) && r.Index.HasColumn(col)
		}) {
			st.racedIDs[r.ID] = true
		}
		if dropped, ok := migrate(tn, table, col, total); ok {
			if dropped {
				st.dropped++
			} else {
				st.renamed++
			}
			st.migratedCols[strings.ToLower(name)]++
			total++
		}
	}
}

// fallbackTarget returns the first non-PK column of the tenant's first
// table, in sorted table order.
func fallbackTarget(tn *workload.Tenant) (string, string) {
	for _, table := range tn.DB.TableNames() {
		def := tn.DB.TableDefPtr(table)
		if def == nil {
			continue
		}
		for _, c := range def.Columns {
			if eligibleColumn(tn.DB, table, c.Name) {
				return table, c.Name
			}
		}
	}
	return "", ""
}

func (st *migrationState) perTenant(tn *workload.Tenant) int {
	return st.migratedCols[strings.ToLower(tn.DB.Name())]
}

func (s migrationScenario) Run(opts Options) (*Result, error) {
	seed := deriveSeed(opts.Seed, s.Name())
	st := &migrationState{racedIDs: make(map[string]bool), migratedCols: make(map[string]int)}
	_, res, err := runFleet(opts, seed, runConfig{
		databases:         migrationDatabases,
		days:              migrationDays,
		statementsPerHour: migrationStmtsPerHour,
		hooks:             fleet.OpsHooks{BeforeHour: st.hook},
	})
	if err != nil {
		return nil, err
	}

	unsettled, schemaErrors := 0, 0
	for _, r := range storeRecords(res, func(r *controlplane.Record) bool { return true }) {
		if st.racedIDs[r.ID] && !r.State.Terminal() {
			unsettled++
		}
		if r.State == controlplane.StateError && strings.Contains(r.LastError, "not in table") {
			schemaErrors++
		}
	}
	racedIncidents := 0
	for _, inc := range res.Plane.StateStore().Incidents() {
		if st.racedIDs[inc.RecID] {
			racedIncidents++
		}
	}

	v := newVerdict(s.Name(), opts)
	migrations := st.dropped + st.renamed
	v.check("migrations-executed", migrations >= 1,
		"%d column drops, %d renames during hours %d-%d",
		st.dropped, st.renamed, migrationWindowStart, migrationWindowEnd)
	v.check("raced-recs-settle", unsettled == 0,
		"%d of %d raced in-flight recommendations still non-terminal after drain",
		unsettled, len(st.racedIDs))
	if !opts.Chaos {
		// A migration racing a recommendation is business as usual
		// (§8.3), never an on-call page. Chaos runs skip the gate: fault
		// injection legitimately exhausts retries into incidents.
		v.check("no-spurious-incidents", racedIncidents == 0,
			"%d incidents filed for migration-raced recommendations", racedIncidents)
	}
	auditChecks(&v, res)
	v.evidence("columns-dropped", float64(st.dropped))
	v.evidence("columns-renamed", float64(st.renamed))
	v.evidence("raced-recs", float64(len(st.racedIDs)))
	v.evidence("schema-error-records", float64(schemaErrors))
	v.evidence("raced-incidents", float64(racedIncidents))
	v.evidence("revert-rate", res.Stats.RevertRate)
	v.finalize()
	return &Result{Verdict: v, Report: v.Format()}, nil
}
