// The fixture driver type-checks this file under the import path
// "autoindex/internal/wire" and asserts the wallclock analyzer stays
// silent: the wire codec layer is on the sanctioned list because real
// network connections need real read deadlines. There is deliberately
// no want and no //lint:ignore here — the package exemption itself must
// do the suppressing.
package fixture

import (
	"net"
	"time"
)

func wireDeadline(nc net.Conn, d time.Duration) error {
	return nc.SetReadDeadline(time.Now().Add(d))
}
