// Errcompare fixtures: identity and string comparison of errors.
package fixture

import (
	"errors"
	"io"
	"strings"
)

var errAborted = errors.New("aborted")

// classifyBug is the minimized PR-3 bug: when fault injection started
// wrapping engine sentinels with %w, identity comparison silently
// stopped matching and misclassified aborts.
func classifyBug(err error) bool {
	return err == errAborted // want "errcompare: error compared with == against sentinel errAborted"
}

func classifyNeq(err error) bool {
	if err != errAborted { // want "errcompare: error compared with != against sentinel errAborted"
		return false
	}
	return true
}

// classifyIs is the fix: no diagnostic.
func classifyIs(err error) bool {
	return errors.Is(err, errAborted)
}

// nilCheck is idiomatic: no diagnostic.
func nilCheck(err error) bool {
	return err == nil
}

func stdlibSentinel(err error) bool {
	return err == io.EOF // want "errcompare: error compared with == against sentinel io.EOF"
}

func errorTextEquality(err error) bool {
	return err.Error() == "aborted" // want "errcompare: err.Error.. compares error text"
}

func errorTextContains(err error) bool {
	return strings.Contains(err.Error(), "abort") // want "errcompare: strings.Contains over err.Error.. matches error text"
}

func switchIdentity(err error) string {
	switch err {
	case nil:
		return "ok"
	case errAborted: // want "errcompare: switch on error compares sentinel errAborted by identity"
		return "aborted"
	}
	return "other"
}

// localCompare has no sentinel on either side: no diagnostic. (Two
// in-flight errors compared for identity is rare but meaningful —
// e.g. "is this the same retry cause as last round".)
func localCompare(a, b error) bool {
	return a == b
}
