package snap

import "autoindex/internal/value"

// Value appends a typed scalar: kind byte, then the kind's payload.
func (w *Writer) Value(v value.Value) {
	w.buf = append(w.buf, byte(v.K))
	switch v.K {
	case value.Null:
	case value.Float:
		w.Float(v.F)
	case value.String:
		w.String(v.S)
	default: // Int, Bool, Time share the I field
		w.Varint(v.I)
	}
}

// Row appends a length-prefixed tuple of values.
func (w *Writer) Row(row value.Row) {
	w.Uvarint(uint64(len(row)))
	for _, v := range row {
		w.Value(v)
	}
}

// Value reads a typed scalar, rejecting unknown kinds.
func (r *Reader) Value() (value.Value, error) {
	if r.Remaining() < 1 {
		return value.Value{}, corruptf("truncated value kind")
	}
	k := value.Kind(r.buf[r.off])
	r.off++
	if k > value.Time {
		return value.Value{}, corruptf("unknown value kind %d", k)
	}
	v := value.Value{K: k}
	var err error
	switch k {
	case value.Null:
	case value.Float:
		v.F, err = r.Float()
	case value.String:
		v.S, err = r.String()
	default:
		v.I, err = r.Varint()
	}
	if err != nil {
		return value.Value{}, err
	}
	return v, nil
}

// Row reads a length-prefixed tuple of values.
func (r *Reader) Row() (value.Row, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	row := make(value.Row, n)
	for i := range row {
		if row[i], err = r.Value(); err != nil {
			return nil, err
		}
	}
	return row, nil
}
