# Standard targets for the autoindex reproduction. Everything is plain
# `go` underneath; the Makefile just fixes the flag sets so CI and
# humans run the same thing.

GO ?= go

.PHONY: all build test race vet lint check bench cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis: go vet plus the repo's own determinism linter
# (cmd/lint — maporder, wallclock, errcompare, lockdiscipline; see
# ARCHITECTURE.md "Static analysis"). Part of tier-1 verify.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/lint ./...

# The full local gate: what CI runs on every change.
check: build test lint

# The concurrency-sensitive packages under the race detector: the
# sharded fleet harness, the telemetry hub, the fault-injection layer,
# and the control plane's micro-service loops vs. concurrent injectors —
# including the chaos property/determinism tests those packages carry.
# The engine's differential suite (fault-injected DDL vs. concurrent
# build paths) runs under race too. Part of tier-1 verify.
race:
	$(GO) test -race -count=1 ./internal/fleet ./internal/telemetry ./internal/controlplane ./internal/faults
	$(GO) test -race -count=1 -run 'Differential' ./internal/engine

vet:
	$(GO) vet ./...

# Coverage floor for the chaos-critical packages: the control plane's
# state machine / crash recovery and the fault-injection layer. The
# floor is a ratchet — raise it when coverage rises, never lower it.
COVER_FLOOR = 75

cover:
	$(GO) test -coverprofile=cover.out ./internal/controlplane ./internal/faults
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { pct = $$3; sub(/%/, "", pct); \
		  if (pct + 0 < floor) { printf "FAIL: coverage %s%% below floor %d%%\n", pct, floor; exit 1 } \
		  else { printf "ok: coverage %s%% meets floor %d%%\n", pct, floor } }'

# Paper tables/figures as benchmarks; BenchmarkFleetParallel also
# rewrites BENCH_fleet.json with per-worker-count timings.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

clean:
	$(GO) clean ./...
