// Package binstance implements B-instances (§7.1): independent copies of
// a database seeded from a snapshot of the primary (the A-instance),
// receiving a best-effort fork of the primary's statement stream. The
// replay is intentionally unsynchronised — statements may be dropped or
// reordered — so a B-instance can diverge; divergence is detected and
// reported, and a failed B-instance never affects the A-instance.
package binstance

import (
	"fmt"
	"sync"

	"autoindex/internal/engine"
	"autoindex/internal/sim"
)

// Config tunes the fork fidelity.
type Config struct {
	// DropProbability is the chance a forked statement is dropped.
	DropProbability float64
	// ReorderProbability is the chance a statement is swapped with its
	// successor in the forked stream.
	ReorderProbability float64
	// FailProbability is the chance the B-instance fails outright during
	// an experiment (the framework must tolerate and clean up).
	FailProbability float64
}

// DefaultConfig returns realistic fork behaviour. FailProbability is per
// forwarded statement, so long replays still see occasional instance
// failures without making every experiment fail.
func DefaultConfig() Config {
	return Config{DropProbability: 0.01, ReorderProbability: 0.02, FailProbability: 0.00005}
}

// BInstance is a forked copy of a primary database.
type BInstance struct {
	cfg Config
	rng *sim.RNG

	// DB is the B-instance's own engine (a snapshot clone of the primary).
	DB *engine.Database
	// Primary is the A-instance (never written by this package).
	Primary *engine.Database

	mu       sync.Mutex
	pending  []string
	replayed int64
	dropped  int64
	failed   bool
}

// Fork creates a B-instance from a snapshot of primary.
func Fork(primary *engine.Database, name string, cfg Config, rng *sim.RNG) *BInstance {
	return &BInstance{
		cfg:     cfg,
		rng:     rng.Child("binstance/" + name),
		DB:      primary.Clone(name),
		Primary: primary,
	}
}

// Offer forwards one statement from the TDS fork. Statements may be
// dropped or reordered before replay; they execute on the B-instance
// without any synchronisation with the primary.
func (b *BInstance) Offer(sql string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failed {
		return
	}
	if b.rng.Float64() < b.cfg.FailProbability {
		b.failed = true
		b.pending = nil
		return
	}
	if b.rng.Float64() < b.cfg.DropProbability {
		b.dropped++
		return
	}
	b.pending = append(b.pending, sql)
	if n := len(b.pending); n >= 2 && b.rng.Float64() < b.cfg.ReorderProbability {
		b.pending[n-1], b.pending[n-2] = b.pending[n-2], b.pending[n-1]
	}
	// Drain eagerly, keeping at most a small buffer to allow reordering.
	for len(b.pending) > 1 {
		b.replayOne()
	}
}

// Flush replays any buffered statements.
func (b *BInstance) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.pending) > 0 {
		b.replayOne()
	}
}

func (b *BInstance) replayOne() {
	sql := b.pending[0]
	b.pending = b.pending[1:]
	if _, err := b.DB.Exec(sql); err != nil {
		// Best-effort: replay errors (e.g., duplicate key from a replayed
		// insert racing a reorder) are divergence, not failures.
		b.dropped++
		return
	}
	b.replayed++
}

// Failed reports whether the B-instance failed.
func (b *BInstance) Failed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failed
}

// Stats reports replay accounting.
func (b *BInstance) Stats() (replayed, dropped int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.replayed, b.dropped
}

// Divergence measures how far the B-instance's data has drifted from the
// primary, as the max relative row-count difference across tables.
// Experiments abandon B-instances that diverge too far.
func (b *BInstance) Divergence() float64 {
	worst := 0.0
	for _, t := range b.Primary.TableNames() {
		p := float64(b.Primary.RowCount(t))
		q := float64(b.DB.RowCount(t))
		if p == 0 && q == 0 {
			continue
		}
		denom := p
		if denom < 1 {
			denom = 1
		}
		rel := abs(p-q) / denom
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// String describes the instance.
func (b *BInstance) String() string {
	r, d := b.Stats()
	return fmt.Sprintf("binstance(%s replayed=%d dropped=%d failed=%v)", b.DB.Name(), r, d, b.Failed())
}
