package engine

import (
	"errors"

	"autoindex/internal/costcache"
	"autoindex/internal/optimizer"
	"autoindex/internal/sqlparser"
)

// ErrWhatIfBudget is returned when a what-if session exhausts its
// optimizer-call budget — the resource governance DTA runs under (§5.3.1).
var ErrWhatIfBudget = errors.New("engine: what-if session optimizer-call budget exhausted")

// WhatIfSession reproduces the AutoAdmin what-if index analysis utility
// [11]: callers add hypothetical indexes (metadata + statistics only) and
// cost statements against the resulting configuration without building
// anything. Each session is budgeted: SQL Server's resource governor
// limits DTA's footprint on the primary, and exceeding the budget aborts
// the session.
type WhatIfSession struct {
	db  *Database
	cat *optimizer.WhatIfCatalog
	opt *optimizer.Optimizer
	// MaxOptimizerCalls bounds the session; 0 means unlimited.
	MaxOptimizerCalls int64
	// StatsCreated counts sampled-statistics builds charged to the
	// session (DTA's main server-side overhead, §5.3.1).
	StatsCreated int64
	// DisableCostCache bypasses the database's plan-cost cache, forcing
	// every pricing through the optimizer (exact runs, differential
	// tests). Cache hits never count against MaxOptimizerCalls — a hit
	// imposes no load on the server the budget protects.
	DisableCostCache bool
}

// NewWhatIfSession opens a what-if session over the database.
func (d *Database) NewWhatIfSession() *WhatIfSession {
	cat := optimizer.NewWhatIfCatalog(d)
	return &WhatIfSession{
		db:  d,
		cat: cat,
		opt: &optimizer.Optimizer{Cat: cat, WhatIfMode: true, Reg: d.Metrics()},
	}
}

// Catalog exposes the overlay catalog (for adding/removing hypotheticals).
func (s *WhatIfSession) Catalog() *optimizer.WhatIfCatalog { return s.cat }

// Calls reports optimizer calls made so far.
func (s *WhatIfSession) Calls() int64 { return s.opt.Calls() }

// Cost plans stmt under the session's hypothetical configuration and
// returns the estimated cost. Statements the what-if API cannot optimize
// return optimizer.ErrWhatIfUnsupported; budget exhaustion returns
// ErrWhatIfBudget.
func (s *WhatIfSession) Cost(stmt sqlparser.Statement) (float64, *optimizer.Plan, error) {
	if s.MaxOptimizerCalls > 0 && s.opt.Calls() >= s.MaxOptimizerCalls {
		return 0, nil, ErrWhatIfBudget
	}
	return s.opt.CostStatement(stmt)
}

// CostQuery is Cost with plan-cost caching: queryHash is the statement's
// canonical Query Store fingerprint, and (queryHash, current catalog
// signature) keys the lookup. Misses fall through to the optimizer and
// fill the cache; hits consume no optimizer-call budget.
func (s *WhatIfSession) CostQuery(queryHash uint64, stmt sqlparser.Statement) (float64, *optimizer.Plan, error) {
	if s.DisableCostCache || queryHash == 0 {
		return s.Cost(stmt)
	}
	key := costcache.Key{QueryHash: queryHash, ConfigSig: s.cat.ConfigSignature()}
	if cost, plan, ok := s.db.costCache.Get(key); ok {
		return cost, plan, nil
	}
	cost, plan, err := s.Cost(stmt)
	if err != nil {
		return 0, nil, err
	}
	s.db.costCache.Put(key, cost, plan)
	return cost, plan, nil
}

// CostConfigurations prices stmt under every configuration (each on top
// of the session's current hypothetical set) in one batch, resolving
// cached pricings first and forwarding only the misses to the
// optimizer's batched API. Budget exhaustion mid-batch surfaces as
// Skipped results, exactly as in optimizer.CostConfigurations.
func (s *WhatIfSession) CostConfigurations(queryHash uint64, stmt sqlparser.Statement, configs []optimizer.Configuration) ([]optimizer.ConfigCost, error) {
	if s.DisableCostCache || queryHash == 0 {
		return s.opt.CostConfigurations(stmt, configs, s.MaxOptimizerCalls)
	}
	out := make([]optimizer.ConfigCost, len(configs))
	var missIdx []int
	var miss []optimizer.Configuration
	for i, cfg := range configs {
		key := costcache.Key{QueryHash: queryHash, ConfigSig: s.cat.ConfigSignatureWith(cfg.Add)}
		if cost, plan, ok := s.db.costCache.Get(key); ok {
			out[i] = optimizer.ConfigCost{Cost: cost, Plan: plan}
			continue
		}
		missIdx = append(missIdx, i)
		miss = append(miss, cfg)
	}
	if len(miss) > 0 {
		res, err := s.opt.CostConfigurations(stmt, miss, s.MaxOptimizerCalls)
		if err != nil {
			return nil, err
		}
		for j, r := range res {
			out[missIdx[j]] = r
			if !r.Skipped {
				key := costcache.Key{QueryHash: queryHash, ConfigSig: s.cat.ConfigSignatureWith(miss[j].Add)}
				s.db.costCache.Put(key, r.Cost, r.Plan)
			}
		}
	}
	return out, nil
}

// CreateSampledStats simulates DTA building a sampled statistic on the
// server: the work is charged to the session and to virtual time.
func (s *WhatIfSession) CreateSampledStats(table, column string) {
	s.StatsCreated++
	// Building a sampled stat reads a fraction of the table.
	s.db.rebuildColumnStats(table, column)
}

// Cleanup removes all hypothetical indexes, as the control plane does when
// a DTA session ends or is aborted (§5.3.3).
func (s *WhatIfSession) Cleanup() { s.cat.ClearHypothetical() }
