package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// DetFlowAnalyzer generalizes wallclock + maporder across call
// boundaries: it taints values derived from nondeterministic sources —
// the wall clock, the process-global math/rand source, map-iteration
// order — propagates the taint through assignments, returns, and
// arguments over the call graph, and reports any tainted value that
// reaches a determinism sink: the snap encoders, MarshalDeterministic/
// EncodeTo snapshot methods, query-store state, or an fmt print/Fprint
// report writer.
//
// The sanctioned wall-clock packages (internal/sim, internal/wire,
// internal/serve) still *produce* taint here. wallclock already bans
// raw clock reads everywhere else; detflow's whole value is catching a
// sanctioned read whose result then leaks into deterministic output —
// e.g. a serve-layer wall timestamp finding its way into a Query Store
// snapshot that fleet runs promise to reproduce byte-for-byte.
//
// The analysis is deliberately flow-insensitive within a function
// (taint only accrues, except that sorting a map-order-tainted slice
// clears it, mirroring maporder) and does not track taint captured by
// closures from their enclosing function. Both choices under-report;
// neither invents findings.
var DetFlowAnalyzer = &Analyzer{
	Name:       "detflow",
	Doc:        "nondeterministic value (wall clock, global rand, map order) flowing into a deterministic sink across calls",
	SkipTests:  true,
	RunProgram: runDetFlow,
}

// Taint kinds, phrased for diagnostics.
const (
	kindWall     = "wall-clock time"
	kindRand     = "global math/rand"
	kindMapOrder = "map-iteration order"
)

// A taintInfo says where a value's nondeterminism originates.
type taintInfo struct {
	kind   string
	origin token.Pos
}

func detRetKey(n *FuncNode) string { return "detflow.ret:" + n.Key }
func detParamKey(n *FuncNode, i int) string {
	return "detflow.param:" + n.Key + "#" + strconv.Itoa(i)
}
func detRecvKey(n *FuncNode) string { return "detflow.param:" + n.Key + "#recv" }

func runDetFlow(pass *ProgramPass) {
	prog := pass.Prog

	// Phase 1: propagate return- and parameter-taint facts to a fixed
	// point. Facts are monotone (set once, never changed), so the
	// driver converges.
	prog.FixedPoint(func(n *FuncNode) []*FuncNode {
		// internal/sim is a taint barrier: the simulation substrate's
		// whole contract is that values it hands out are deterministic
		// for a given seed. Without the barrier, conservative interface
		// resolution would let sim.WallClock.Now's taint flow out of
		// every sim.Clock.Now call site and flood the module.
		if pkgPathHasSuffix(unitPkgPath(n.Unit), simPkgSuffix) {
			return nil
		}
		sc := newDetScan(pass, n)
		sc.run()
		var changed []*FuncNode
		if t := sc.returnTaint(); t != nil && pass.Facts.GetKey(detRetKey(n)) == nil {
			pass.Facts.SetKey(detRetKey(n), t)
			changed = append(changed, n)
		}
		changed = append(changed, sc.propagateArgs()...)
		return changed
	})

	// Phase 2: with facts stable, report tainted values reaching sinks.
	for _, n := range prog.Nodes {
		if n.Test {
			continue
		}
		sc := newDetScan(pass, n)
		sc.run()
		sc.reportSinks()
	}
}

// unitPkgPath strips the ".test" unit suffix back to the import path.
// pkgPathHasSuffix (metricsdiscipline.go) is its suffix-matching
// companion.
func unitPkgPath(u *Unit) string { return strings.TrimSuffix(u.Path, ".test") }

// --- per-function taint scan ------------------------------------------

type detScan struct {
	pass    *ProgramPass
	prog    *Program
	node    *FuncNode
	info    *types.Info
	taint    map[types.Object]*taintInfo
	ranges   [][2]token.Pos // body spans of range-over-map statements
	changed  bool
	reported map[token.Pos]bool // taint origins already reported (one finding each)
}

func newDetScan(pass *ProgramPass, n *FuncNode) *detScan {
	return &detScan{
		pass:  pass,
		prog:  pass.Prog,
		node:  n,
		info:  n.Unit.Info,
		taint: make(map[types.Object]*taintInfo),
	}
}

// inspect walks the node's own body, never descending into nested
// function literals — each literal is its own FuncNode.
func (sc *detScan) inspect(fn func(ast.Node) bool) {
	ast.Inspect(sc.node.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}

func (sc *detScan) run() {
	// Seed parameters (and the receiver) from caller-exported facts.
	for i, obj := range paramObjs(sc.info, sc.node) {
		if obj == nil {
			continue
		}
		if t, ok := sc.pass.Facts.GetKey(detParamKey(sc.node, i)).(*taintInfo); ok {
			sc.taint[obj] = t
		}
	}
	if recv := recvObj(sc.info, sc.node); recv != nil {
		if t, ok := sc.pass.Facts.GetKey(detRecvKey(sc.node)).(*taintInfo); ok {
			sc.taint[recv] = t
		}
	}

	sc.inspect(func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok && underMap(sc.info.TypeOf(rs.X)) != nil {
			sc.ranges = append(sc.ranges, [2]token.Pos{rs.Body.Pos(), rs.Body.End()})
		}
		return true
	})

	// Flow-insensitive local propagation to a (bounded) fixed point.
	for pass := 0; pass < 8; pass++ {
		sc.changed = false
		sc.inspect(func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				sc.assign(st)
			case *ast.ValueSpec:
				sc.valueSpec(st)
			}
			return true
		})
		if !sc.changed {
			break
		}
	}
}

// assign propagates RHS taint to LHS targets and applies the two
// map-order accrual rules inside range-over-map bodies.
func (sc *detScan) assign(st *ast.AssignStmt) {
	if region, in := sc.mapRangeAt(st.Pos()); in {
		for i, lhs := range st.Lhs {
			obj := rootObj(sc.info, lhs)
			if obj == nil || within(obj.Pos(), region) {
				continue // loop-local accumulation dies with the loop
			}
			if sc.sortedAfter(obj.Name(), st.Pos()) {
				continue // canonicalized before use, mirroring maporder
			}
			switch {
			case st.Tok == token.ASSIGN && i < len(st.Rhs) && isSelfAppend(sc.info, lhs, st.Rhs[i]):
				// x = append(x, ...) keyed by map order.
				sc.setTaint(obj, &taintInfo{kind: kindMapOrder, origin: st.Pos()})
			case st.Tok != token.ASSIGN && st.Tok != token.DEFINE && isFloat(sc.info.TypeOf(lhs)):
				// sum += f: float accumulation order is observable.
				sc.setTaint(obj, &taintInfo{kind: kindMapOrder, origin: st.Pos()})
			}
		}
	}
	if len(st.Lhs) == len(st.Rhs) {
		for i := range st.Lhs {
			sc.setExprTarget(st.Lhs[i], sc.exprTaint(st.Rhs[i]))
		}
	} else if len(st.Rhs) == 1 {
		t := sc.exprTaint(st.Rhs[0])
		for _, lhs := range st.Lhs {
			sc.setExprTarget(lhs, t)
		}
	}
}

func (sc *detScan) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == len(vs.Names) {
		for i, name := range vs.Names {
			sc.setIdent(name, sc.exprTaint(vs.Values[i]))
		}
	} else if len(vs.Values) == 1 {
		t := sc.exprTaint(vs.Values[0])
		for _, name := range vs.Names {
			sc.setIdent(name, t)
		}
	}
}

// setExprTarget taints the root object of an assignment target: an
// ident directly, a field/element write (s.x = t, s[i] = t) by tainting
// the containing variable.
func (sc *detScan) setExprTarget(lhs ast.Expr, t *taintInfo) {
	if t == nil {
		return
	}
	sc.setTaint(rootObj(sc.info, lhs), t)
}

func (sc *detScan) setIdent(id *ast.Ident, t *taintInfo) {
	if t == nil || id.Name == "_" {
		return
	}
	obj := sc.info.Defs[id]
	if obj == nil {
		obj = sc.info.Uses[id]
	}
	sc.setTaint(obj, t)
}

func (sc *detScan) setTaint(obj types.Object, t *taintInfo) {
	if obj == nil || t == nil {
		return
	}
	if _, ok := sc.taint[obj]; !ok {
		sc.taint[obj] = t
		sc.changed = true
	}
}

// exprTaint resolves the taint of an expression, or nil.
func (sc *detScan) exprTaint(e ast.Expr) *taintInfo {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := sc.info.Uses[x]
		if obj == nil {
			obj = sc.info.Defs[x]
		}
		if obj != nil {
			return sc.taint[obj]
		}
		return nil
	case *ast.CallExpr:
		return sc.callTaint(x)
	case *ast.ParenExpr:
		return sc.exprTaint(x.X)
	case *ast.SelectorExpr:
		return sc.exprTaint(x.X) // a field of a tainted value is tainted
	case *ast.StarExpr:
		return sc.exprTaint(x.X)
	case *ast.UnaryExpr:
		return sc.exprTaint(x.X)
	case *ast.BinaryExpr:
		if t := sc.exprTaint(x.X); t != nil {
			return t
		}
		return sc.exprTaint(x.Y)
	case *ast.IndexExpr:
		if t := sc.exprTaint(x.X); t != nil {
			return t
		}
		return sc.exprTaint(x.Index)
	case *ast.SliceExpr:
		return sc.exprTaint(x.X)
	case *ast.TypeAssertExpr:
		return sc.exprTaint(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if t := sc.exprTaint(el); t != nil {
				return t
			}
		}
		return nil
	case *ast.KeyValueExpr:
		return sc.exprTaint(x.Value)
	}
	return nil
}

// callTaint classifies a call's result: a nondeterminism source, a
// module function with a return-taint fact, a conversion or external
// pass-through of a tainted operand, or clean.
func (sc *detScan) callTaint(call *ast.CallExpr) *taintInfo {
	// Conversions pass taint through.
	if tv, ok := sc.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return sc.exprTaint(call.Args[0])
		}
		return nil
	}

	// Direct sources.
	if path, name, ok := pkgFunc(sc.info, call); ok {
		switch {
		case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
			return &taintInfo{kind: kindWall, origin: call.Pos()}
		case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
			return &taintInfo{kind: kindRand, origin: call.Pos()}
		}
	}
	if fn, sel := methodOf(sc.info, call); fn != nil && wallTimeFuncs[fn.Name()] {
		// A call on a *concrete* sim.WallClock receiver is a source:
		// sanctioned to read, still nondeterministic to emit. Interface
		// dispatch through sim.Clock is NOT — the virtual clock behind
		// it is deterministic by design, and internal/sim is a taint
		// barrier (see runDetFlow) so WallClock's own time.Now does not
		// leak through as a return fact either.
		if name, pkg := namedOwner(sc.info.TypeOf(sel.X)); name == "WallClock" && pkgPathHasSuffix(pkg, simPkgSuffix) {
			return &taintInfo{kind: kindWall, origin: call.Pos()}
		}
	}

	// Module callees: facts are authoritative.
	if site := sc.prog.SiteFor(call); site != nil && len(site.Callees) > 0 {
		for _, c := range site.Callees {
			if t, ok := sc.pass.Facts.GetKey(detRetKey(c)).(*taintInfo); ok {
				return t
			}
		}
		return nil
	}

	// Builtins and external functions: conservative pass-through
	// (fmt.Sprintf of a tainted value is tainted; len is not).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap", "make", "new":
			return nil
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := sc.exprTaint(sel.X); t != nil {
			if _, isPkg := sc.info.Uses[rootIdent(sel.X)].(*types.PkgName); !isPkg {
				return t // method on a tainted receiver
			}
		}
	}
	for _, a := range call.Args {
		if t := sc.exprTaint(a); t != nil {
			return t
		}
	}
	return nil
}

// sortedAfter reports whether a sort call later in the body
// canonicalizes target. It must run at accrual time, before the taint
// can propagate to derived values — clearing afterwards would leave
// the derivatives tainted.
func (sc *detScan) sortedAfter(target string, from token.Pos) bool {
	found := false
	sc.inspect(func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < from || !sc.isSort(call) {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(arg, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (sc *detScan) isSort(call *ast.CallExpr) bool {
	if path, name, ok := pkgFunc(sc.info, call); ok {
		switch path {
		case "sort":
			switch name {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				return true
			}
		case "slices":
			switch name {
			case "Sort", "SortFunc", "SortStableFunc":
				return true
			}
		}
		return false
	}
	if fn, _ := methodOf(sc.info, call); fn != nil {
		return fn.Name() == "Sort"
	}
	// Module sort helpers by convention: sortUint64(out) and friends.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return strings.HasPrefix(id.Name, "sort") || strings.HasPrefix(id.Name, "Sort")
	}
	return false
}

// returnTaint reports whether any return value of the node is tainted.
func (sc *detScan) returnTaint() *taintInfo {
	var found *taintInfo
	sc.inspect(func(n ast.Node) bool {
		if found != nil {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if t := sc.exprTaint(r); t != nil {
				found = t
				return false
			}
		}
		return true
	})
	return found
}

// propagateArgs exports parameter-taint facts to module callees whose
// call sites receive tainted arguments (or receivers), returning the
// callees whose facts changed.
func (sc *detScan) propagateArgs() []*FuncNode {
	var changed []*FuncNode
	for _, site := range sc.node.Calls {
		if len(site.Callees) == 0 {
			continue
		}
		var recvTaint *taintInfo
		if sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := sc.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				recvTaint = sc.exprTaint(sel.X)
			}
		}
		for _, c := range site.Callees {
			if recvTaint != nil && sc.pass.Facts.GetKey(detRecvKey(c)) == nil {
				sc.pass.Facts.SetKey(detRecvKey(c), recvTaint)
				changed = append(changed, c)
			}
			for i, arg := range site.Call.Args {
				t := sc.exprTaint(arg)
				if t == nil {
					continue
				}
				if sc.pass.Facts.GetKey(detParamKey(c, i)) == nil {
					sc.pass.Facts.SetKey(detParamKey(c, i), t)
					changed = append(changed, c)
				}
			}
		}
	}
	return changed
}

// --- sinks ------------------------------------------------------------

// fmtPrintFuncs are the fmt functions that write to a stream — the
// report-writer sinks. Sprint* are not sinks; they only propagate.
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// snapshotSinkMethods are deterministic-encoding entry points by name:
// every snapshot type in the repo writes itself through one of these.
var snapshotSinkMethods = map[string]bool{
	"MarshalDeterministic": true,
	"EncodeTo":             true,
}

func (sc *detScan) reportSinks() {
	sc.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// fmt stream writers.
		if path, name, ok := pkgFunc(sc.info, call); ok && path == "fmt" && fmtPrintFuncs[name] {
			args := call.Args
			if strings.HasPrefix(name, "Fprint") && len(args) > 0 {
				args = args[1:] // the writer itself is not payload
			}
			for _, a := range args {
				if t := sc.exprTaint(a); t != nil {
					sc.report(call.Pos(), t, "fmt."+name+" report output")
					break
				}
			}
			return true
		}

		// Snapshot encoder methods, by canonical name.
		if fn, sel := methodOf(sc.info, call); fn != nil && snapshotSinkMethods[fn.Name()] {
			if t := sc.exprTaint(sel.X); t != nil {
				sc.report(call.Pos(), t, fn.Name()+" snapshot encoding")
				return true
			}
			for _, a := range call.Args {
				if t := sc.exprTaint(a); t != nil {
					sc.report(call.Pos(), t, fn.Name()+" snapshot encoding")
					break
				}
			}
			return true
		}

		// Module sinks by callee package: exported snap encoder entry
		// points, and the Query Store's state mutator. Unexported
		// helpers inside those packages (error formatters, local sorts)
		// are not sinks, and query-store *reads* only parameterize a
		// lookup — they do not persist the tainted value.
		site := sc.prog.SiteFor(call)
		if site == nil {
			return true
		}
		for _, c := range site.Callees {
			pkg := unitPkgPath(c.Unit)
			var sink string
			switch {
			case pkgPathHasSuffix(pkg, "internal/snap") && exportedNode(c):
				sink = c.Name + " (snap encoder)"
			case pkgPathHasSuffix(pkg, "internal/querystore") && strings.HasSuffix(c.Name, ".Record"):
				sink = c.Name + " (query-store state)"
			default:
				continue
			}
			for _, a := range call.Args {
				if t := sc.exprTaint(a); t != nil {
					sc.report(call.Pos(), t, sink)
					return true
				}
			}
		}
		return true
	})
}

// exportedNode reports whether the node is an exported declared
// function or method (literals are never exported).
func exportedNode(n *FuncNode) bool {
	return n.Decl != nil && n.Decl.Name.IsExported()
}

// report emits at most one finding per taint origin per function: a
// single nondeterministic origin otherwise fans out into one finding
// per encoder field write, drowning the signal.
func (sc *detScan) report(pos token.Pos, t *taintInfo, sink string) {
	if sc.reported == nil {
		sc.reported = make(map[token.Pos]bool)
	}
	if sc.reported[t.origin] {
		return
	}
	sc.reported[t.origin] = true
	sc.pass.Reportf(pos, "value derived from %s (origin %s) reaches deterministic sink %s; derive it via internal/sim or keep it out of deterministic output",
		t.kind, sc.prog.Fset.Position(t.origin), sink)
}

// --- small helpers ----------------------------------------------------

// paramObjs returns the node's parameter objects in declaration order;
// unnamed parameters hold a nil slot so indexes line up with arguments.
func paramObjs(info *types.Info, n *FuncNode) []types.Object {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// recvObj returns the node's receiver object, or nil.
func recvObj(info *types.Info, n *FuncNode) types.Object {
	if n.Decl == nil || n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return nil
	}
	f := n.Decl.Recv.List[0]
	if len(f.Names) == 0 {
		return nil
	}
	return info.Defs[f.Names[0]]
}

// rootObj resolves the base variable of an lvalue chain: s.a[i].b → s.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil || id.Name == "_" {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (sc *detScan) mapRangeAt(pos token.Pos) ([2]token.Pos, bool) {
	for _, r := range sc.ranges {
		if within(pos, r) {
			return r, true
		}
	}
	return [2]token.Pos{}, false
}

func within(pos token.Pos, r [2]token.Pos) bool { return pos >= r[0] && pos < r[1] }

// isSelfAppend reports whether rhs is append(<lhs>, ...) for the same
// base variable as lhs.
func isSelfAppend(info *types.Info, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	lo := rootObj(info, lhs)
	ao := rootObj(info, call.Args[0])
	return lo != nil && lo == ao
}
