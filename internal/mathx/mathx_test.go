package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesDirectComputation(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N != 8 || math.Abs(w.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean)
	}
	// Sample variance of the set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v", w.Variance())
	}
	if math.Abs(w.Sum()-40) > 1e-9 {
		t.Fatalf("sum = %v", w.Sum())
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var all, left, right Welford
		for _, x := range a {
			x = clampF(x)
			all.Add(x)
			left.Add(x)
		}
		for _, x := range b {
			x = clampF(x)
			all.Add(x)
			right.Add(x)
		}
		left.Merge(right)
		if all.N != left.N {
			return false
		}
		if all.N == 0 {
			return true
		}
		return closeEnough(all.Mean, left.Mean) && closeEnough(all.Variance(), left.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	// Keep magnitudes sane for float comparison.
	return math.Mod(x, 1e6)
}

func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6*math.Max(scale, 1)
}

func TestStudentTSurvivalKnownValues(t *testing.T) {
	// Known quantiles: P(T > 2.776) with df=4 ≈ 0.025.
	cases := []struct {
		t, df, want, tol float64
	}{
		{2.776, 4, 0.025, 0.002},
		{1.96, 1e6, 0.025, 0.002}, // ~normal at high df
		{0, 10, 0.5, 1e-9},
		{12.706, 1, 0.025, 0.002},
	}
	for _, c := range cases {
		got := StudentTSurvival(c.t, c.df)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("StudentTSurvival(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestWelchDetectsDifference(t *testing.T) {
	a := Sample{N: 30, Mean: 10, Variance: 4}
	b := Sample{N: 30, Mean: 14, Variance: 9}
	res, ok := Welch(a, b)
	if !ok {
		t.Fatal("welch failed")
	}
	if res.P > 0.001 {
		t.Fatalf("clearly different samples, p = %v", res.P)
	}
	if res.T >= 0 {
		t.Fatalf("a < b should give negative t, got %v", res.T)
	}
}

func TestWelchNoDifference(t *testing.T) {
	a := Sample{N: 10, Mean: 10, Variance: 25}
	b := Sample{N: 12, Mean: 10.4, Variance: 30}
	res, ok := Welch(a, b)
	if !ok {
		t.Fatal("welch failed")
	}
	if res.P < 0.5 {
		t.Fatalf("similar samples, p = %v too small", res.P)
	}
}

func TestWelchRequiresTwoObservations(t *testing.T) {
	if _, ok := Welch(Sample{N: 1, Mean: 10}, Sample{N: 30, Mean: 10, Variance: 1}); ok {
		t.Fatal("n=1 must be rejected")
	}
}

func TestWelchZeroVariance(t *testing.T) {
	a := Sample{N: 5, Mean: 10}
	b := Sample{N: 5, Mean: 10}
	res, ok := Welch(a, b)
	if !ok || res.P != 1 {
		t.Fatalf("identical constants: p = %v ok = %v", res.P, ok)
	}
	c := Sample{N: 5, Mean: 12}
	res, ok = Welch(a, c)
	if !ok || res.P != 0 {
		t.Fatalf("different constants: p = %v", res.P)
	}
}

// Welch on simulated same-distribution data should reject ~alpha of the
// time.
func TestWelchFalsePositiveRate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rejects := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		var wa, wb Welford
		for j := 0; j < 25; j++ {
			wa.Add(100 + 10*r.NormFloat64())
			wb.Add(100 + 10*r.NormFloat64())
		}
		res, ok := Welch(FromWelford(wa), FromWelford(wb))
		if ok && res.P < 0.05 {
			rejects++
		}
	}
	rate := float64(rejects) / trials
	if rate > 0.10 {
		t.Fatalf("false positive rate %.3f far above alpha", rate)
	}
}

func TestSlopeTStat(t *testing.T) {
	// Perfect upward line: infinite t.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9}
	slope, tstat, _, ok := SlopeTStat(xs, ys)
	if !ok || slope != 2 || !math.IsInf(tstat, 1) {
		t.Fatalf("perfect line: slope=%v t=%v ok=%v", slope, tstat, ok)
	}
	// Noisy upward trend: still significant.
	ys = []float64{1, 2.8, 5.3, 6.9, 9.2}
	if !SlopeSignificantlyPositive(xs, ys, 0.05) {
		t.Fatal("clear upward trend should be significant")
	}
	// Flat/noise: not significant.
	ys = []float64{5, 4.9, 5.2, 4.8, 5.1}
	if SlopeSignificantlyPositive(xs, ys, 0.05) {
		t.Fatal("flat series must not be significant")
	}
	// Decreasing: never positive.
	ys = []float64{9, 7, 5, 3, 1}
	if SlopeSignificantlyPositive(xs, ys, 0.5) {
		t.Fatal("negative slope must not pass")
	}
	// Too few points.
	if _, _, _, ok := SlopeTStat(xs[:2], ys[:2]); ok {
		t.Fatal("n<3 must fail")
	}
	// Zero x spread.
	if _, _, _, ok := SlopeTStat([]float64{1, 1, 1}, []float64{1, 2, 3}); ok {
		t.Fatal("no x spread must fail")
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("bounds")
	}
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if math.Abs(RegIncBeta(1, 1, x)-x) > 1e-9 {
			t.Fatalf("I_%v(1,1) = %v", x, RegIncBeta(1, 1, x))
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	f := func(a8, b8 uint8, x float64) bool {
		a := float64(a8%20) + 0.5
		b := float64(b8%20) + 0.5
		x = math.Abs(math.Mod(x, 1))
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return math.Abs(lhs-rhs) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLogisticLearnsSeparableData(t *testing.T) {
	l := NewLogistic(2)
	r := rand.New(rand.NewSource(3))
	// Label = x0 > x1.
	for i := 0; i < 4000; i++ {
		x := []float64{r.Float64(), r.Float64()}
		l.Train(x, x[0] > x[1])
	}
	correct := 0
	for i := 0; i < 500; i++ {
		x := []float64{r.Float64(), r.Float64()}
		if l.Predict(x, 0.5) == (x[0] > x[1]) {
			correct++
		}
	}
	if correct < 400 {
		t.Fatalf("classifier accuracy %d/500 too low", correct)
	}
	if l.Seen != 4000 {
		t.Fatalf("seen = %d", l.Seen)
	}
}
