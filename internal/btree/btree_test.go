package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"autoindex/internal/value"
)

func intKey(vals ...int64) value.Key {
	k := make(value.Key, len(vals))
	for i, v := range vals {
		k[i] = value.NewInt(v)
	}
	return k
}

func TestInsertGetDelete(t *testing.T) {
	tr := New(8)
	for i := int64(0); i < 1000; i++ {
		if !tr.Insert(intKey(i), value.Row{value.NewInt(i * 10)}) {
			t.Fatalf("insert %d reported replace", i)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d, want 1000", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		p, ok := tr.Get(intKey(i))
		if !ok || p[0].I != i*10 {
			t.Fatalf("get %d = %v, %v", i, p, ok)
		}
	}
	if _, ok := tr.Get(intKey(5000)); ok {
		t.Fatal("found missing key")
	}
	// Replace.
	if tr.Insert(intKey(7), value.Row{value.NewInt(999)}) {
		t.Fatal("replace reported insert")
	}
	p, _ := tr.Get(intKey(7))
	if p[0].I != 999 {
		t.Fatal("replace did not take")
	}
	// Delete half.
	for i := int64(0); i < 1000; i += 2 {
		if !tr.Delete(intKey(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("len after delete = %d", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		_, ok := tr.Get(intKey(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("get %d = %v, want %v", i, ok, want)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOrderInsertions(t *testing.T) {
	tr := New(16)
	r := rand.New(rand.NewSource(42))
	perm := r.Perm(5000)
	for _, v := range perm {
		tr.Insert(intKey(int64(v)), value.Row{value.NewInt(int64(v))})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full ascend must be sorted and complete.
	var got []int64
	tr.Ascend(func(e Entry) bool {
		got = append(got, e.Key[0].I)
		return true
	})
	if len(got) != 5000 {
		t.Fatalf("ascend yielded %d entries", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("ascend out of order")
	}
}

func TestRangeSeek(t *testing.T) {
	tr := New(8)
	for i := int64(0); i < 100; i++ {
		tr.Insert(intKey(i*2), value.Row{value.NewInt(i)})
	}
	// [10, 20] inclusive: keys 10,12,...,20.
	it := tr.Seek(intKey(10), true, intKey(20), true)
	var keys []int64
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		keys = append(keys, e.Key[0].I)
	}
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(keys) != len(want) {
		t.Fatalf("got %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("got %v, want %v", keys, want)
		}
	}
	// Exclusive upper bound.
	it = tr.Seek(intKey(10), true, intKey(20), false)
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("exclusive hi: got %d entries, want 5", n)
	}
	// Seek between keys starts at the next one.
	it = tr.Seek(intKey(11), true, nil, true)
	e, ok := it.Next()
	if !ok || e.Key[0].I != 12 {
		t.Fatalf("seek 11 -> %v", e.Key)
	}
}

func TestCompositeKeysAndPrefixScan(t *testing.T) {
	tr := New(8)
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			tr.Insert(intKey(a, b), value.Row{value.NewInt(a*100 + b)})
		}
	}
	// Seek with a shorter (prefix) key positions at its first extension.
	it := tr.Seek(intKey(5), true, nil, true)
	e, ok := it.Next()
	if !ok || e.Key[0].I != 5 || e.Key[1].I != 0 {
		t.Fatalf("prefix seek got %v", e.Key)
	}
	count := 1
	for {
		e, ok := it.Next()
		if !ok || e.Key[0].I != 5 {
			break
		}
		count++
	}
	if count != 10 {
		t.Fatalf("prefix scan found %d entries, want 10", count)
	}
}

func TestHeightAndLeafCountGrow(t *testing.T) {
	tr := New(4)
	if tr.Height() != 1 {
		t.Fatal("empty tree height != 1")
	}
	for i := int64(0); i < 1000; i++ {
		tr.Insert(intKey(i), nil)
	}
	if tr.Height() < 4 {
		t.Fatalf("height %d too small for order-4 tree with 1000 keys", tr.Height())
	}
	if lc := tr.LeafCount(); lc < 250 {
		t.Fatalf("leaf count %d too small", lc)
	}
}

// TestQuickInsertDeleteMatchesMap is a property test: a tree behaves like
// a sorted map under arbitrary interleaved inserts and deletes.
func TestQuickInsertDeleteMatchesMap(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		tr := New(6)
		ref := make(map[int64]int64)
		r := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := int64(op % 128)
			if r.Intn(3) == 0 {
				tr.Delete(intKey(k))
				delete(ref, k)
			} else {
				v := r.Int63n(1 << 30)
				tr.Insert(intKey(k), value.Row{value.NewInt(v)})
				ref[k] = v
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			p, ok := tr.Get(intKey(k))
			if !ok || p[0].I != v {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeScanMatchesSort checks that range scans return exactly the
// reference keys within bounds, in order.
func TestQuickRangeScanMatchesSort(t *testing.T) {
	f := func(keys []uint16, lo, hi uint16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New(5)
		ref := make(map[int64]bool)
		for _, k := range keys {
			tr.Insert(intKey(int64(k)), nil)
			ref[int64(k)] = true
		}
		var want []int64
		for k := range ref {
			if k >= int64(lo) && k <= int64(hi) {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		it := tr.Seek(intKey(int64(lo)), true, intKey(int64(hi)), true)
		var got []int64
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, e.Key[0].I)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
