// Command fleetsim regenerates the paper's evaluation tables and figures
// against simulated fleets:
//
//	fleetsim -experiment fig6 -tier premium -databases 20   // Fig 6(a)
//	fleetsim -experiment fig6 -tier standard -databases 20  // Fig 6(b)
//	fleetsim -experiment opstats -databases 12 -days 10     // §8.1 operational stats
//	fleetsim -experiment reverts -databases 12 -days 10     // §8.1 revert analysis
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not Azure), but the shape — who wins where, the revert rate band, the
// drop:create recommendation ratio — should hold. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/experiment"
	"autoindex/internal/fleet"
)

func main() {
	var (
		exp       = flag.String("experiment", "fig6", "fig6 | opstats | reverts")
		tierStr   = flag.String("tier", "premium", "fig6 tier: premium | standard")
		databases = flag.Int("databases", 12, "fleet size")
		days      = flag.Int("days", 10, "virtual days (opstats/reverts)")
		seed      = flag.Int64("seed", 20170301, "fleet seed")
	)
	flag.Parse()

	switch strings.ToLower(*exp) {
	case "fig6":
		runFig6(*tierStr, *databases, *seed)
	case "opstats":
		runOps(*databases, *days, *seed, false)
	case "reverts":
		runOps(*databases, *days, *seed, true)
	default:
		fmt.Fprintf(os.Stderr, "fleetsim: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func runFig6(tierStr string, databases int, seed int64) {
	var tier engine.Tier
	switch strings.ToLower(tierStr) {
	case "premium":
		tier = engine.TierPremium
	case "standard":
		tier = engine.TierStandard
	default:
		fmt.Fprintf(os.Stderr, "fleetsim: fig6 tier must be premium or standard\n")
		os.Exit(2)
	}
	fmt.Printf("Fig 6 experiment: %d %s-tier databases, B-instance phases, N=20 k=5 (seed %d)\n\n",
		databases, tier, seed)
	fl, err := fleet.Build(fleet.Spec{Databases: databases, Tier: tier, Seed: seed, UserIndexes: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	sum := fl.RunFig6(tier.String(), experiment.DefaultFig6Config())
	fmt.Println(sum.String())
	fmt.Println("paper reference — premium: DTA 42% / MI 13% / User 15% / Comparable ~42%;")
	fmt.Println("                  standard: DTA 27% / MI 6% / User 10% / Comparable ~45%;")
	fmt.Println("                  avg improvement: DTA ~82%, MI ~72%, User ~35% (§7.3)")
}

func runOps(databases, days int, seed int64, revertFocus bool) {
	fmt.Printf("§8.1 operational simulation: %d mixed-tier databases, %d virtual days (seed %d)\n\n",
		databases, days, seed)
	fl, err := fleet.Build(fleet.Spec{Databases: databases, MixedTiers: true, Seed: seed, UserIndexes: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	cfg := fleet.DefaultOpsConfig()
	cfg.Days = days
	cfg.NewTenantEvery = 72 * time.Hour
	if revertFocus {
		// Everyone auto-implements so the revert statistics have volume.
		cfg.AutoImplementFraction = 1.0
	}
	res, err := fl.RunOps(fleet.Spec{Seed: seed, UserIndexes: true}, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	s := res.Stats
	if revertFocus {
		hub := res.Plane.Telemetry()
		fmt.Println("revert analysis (paper: ~11% of automated actions reverted; MI reverts skew")
		fmt.Println("to writes becoming more expensive; SELECT regressions implicate optimizer error):")
		fmt.Printf("  implemented actions:        %d\n", s.CreatesImplemented+s.DropsImplemented)
		fmt.Printf("  reverts:                    %d (%.1f%%)\n", s.Reverts, s.RevertRate*100)
		fmt.Printf("  write-regression reverts:   %d (of which MI-sourced: %d)\n",
			hub.Counter("reverts.write_regression"), hub.Counter("reverts.write_regression.mi"))
		fmt.Printf("  SELECT-regression reverts:  %d\n", hub.Counter("reverts.select_regression"))
		return
	}
	fmt.Println("operational statistics (cf. §8.1):")
	fmt.Printf("  databases managed:                 %d\n", s.Databases)
	fmt.Printf("  create recommendations:            %d\n", s.CreateRecommended)
	fmt.Printf("  drop recommendations:               %d (paper: drops outnumber creates ~14:1 on a mature fleet)\n", s.DropRecommended)
	fmt.Printf("  indexes auto-created / dropped:    %d / %d\n", s.CreatesImplemented, s.DropsImplemented)
	fmt.Printf("  validations / reverts:             %d / %d (%.1f%%)\n", s.Validations, s.Reverts, s.RevertRate*100)
	fmt.Printf("  queries >2x cheaper:               %d\n", res.QueriesTwiceFaster)
	fmt.Printf("  databases with >50%% CPU reduction: %d\n", res.DatabasesHalvedCPU)
	fmt.Printf("  steady-state databases:            %d\n", res.SteadyStateDatabases)
	fmt.Printf("  incidents:                         %d\n", s.Incidents)
}
