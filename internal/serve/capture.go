package serve

import "sync"

// captureState aggregates what live sessions have pushed into Query
// Store. The engine does the recording itself (ExecOptions.LiveCapture);
// this layer counts batches and distinct query templates so operators —
// and the end-to-end tests — can see live traffic flowing into tuning.
type captureState struct {
	mu         sync.Mutex
	statements int64
	batches    int64
	queries    map[uint64]struct{}
}

// CaptureStats is a snapshot of live Query Store capture.
type CaptureStats struct {
	Statements      int64 `json:"statements"`
	Batches         int64 `json:"batches"`
	DistinctQueries int64 `json:"distinct_queries"`
}

// note records one captured statement's query hash.
func (c *captureState) note(queryHash uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queries == nil {
		c.queries = make(map[uint64]struct{})
	}
	c.statements++
	c.queries[queryHash] = struct{}{}
}

// batch marks one capture batch flushed.
func (c *captureState) batch() {
	c.mu.Lock()
	c.batches++
	c.mu.Unlock()
}

func (c *captureState) stats() CaptureStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CaptureStats{
		Statements:      c.statements,
		Batches:         c.batches,
		DistinctQueries: int64(len(c.queries)),
	}
}
