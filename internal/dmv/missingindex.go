// Package dmv reimplements the SQL Server dynamic management views the
// auto-indexing service consumes: the Missing-Index DMVs [34] populated by
// the optimizer during query optimization, and the index usage statistics
// (dm_db_index_usage_stats) that the drop-index analysis and the User
// baseline emulation read (§5.4, §7.3). Missing-index state is volatile —
// it resets on failover or schema change — which is why the recommender
// snapshots it periodically (§5.2).
package dmv

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Candidate is one missing-index candidate exactly as the MI feature
// exposes it: the columns used in equality predicates, inequality
// predicates, and the columns needed upstream in the plan (INCLUDE).
type Candidate struct {
	Table      string
	Equality   []string
	Inequality []string
	Include    []string
}

// Key returns a canonical identity for accumulation.
func (c Candidate) Key() string {
	return strings.ToLower(c.Table) + "|" +
		canonList(c.Equality) + "|" + canonList(c.Inequality) + "|" + canonList(c.Include)
}

func canonList(cols []string) string {
	s := make([]string, len(cols))
	for i, c := range cols {
		s[i] = strings.ToLower(c)
	}
	sort.Strings(s)
	return strings.Join(s, ",")
}

// Entry is the accumulated DMV row for one candidate.
type Entry struct {
	Candidate Candidate
	// Seeks counts optimizations that would have used the index (the
	// DMV's user_seeks analog).
	Seeks int64
	// AvgQueryCost is the average optimizer-estimated cost of the queries
	// that triggered the candidate.
	AvgQueryCost float64
	// AvgImprovementPct is the optimizer's estimated percentage
	// improvement were the index to exist (avg_user_impact analog).
	AvgImprovementPct float64
	// QueryHashes maps triggering query fingerprints to trigger counts
	// (capped), letting the recommender expose impacted statements.
	QueryHashes map[uint64]int64
	FirstSeen   time.Time
	LastSeen    time.Time
}

// Score is the DMV's standard impact formula:
// seeks * avg cost * (improvement/100).
func (e *Entry) Score() float64 {
	return float64(e.Seeks) * e.AvgQueryCost * e.AvgImprovementPct / 100
}

func (e *Entry) clone() *Entry {
	out := *e
	out.Candidate.Equality = append([]string(nil), e.Candidate.Equality...)
	out.Candidate.Inequality = append([]string(nil), e.Candidate.Inequality...)
	out.Candidate.Include = append([]string(nil), e.Candidate.Include...)
	out.QueryHashes = make(map[uint64]int64, len(e.QueryHashes))
	for k, v := range e.QueryHashes {
		out.QueryHashes[k] = v
	}
	return &out
}

// maxTrackedQueries caps per-entry query tracking, mirroring the DMV's
// bounded memory.
const maxTrackedQueries = 64

// MissingIndexStore accumulates candidates like the MI DMVs.
type MissingIndexStore struct {
	mu      sync.Mutex
	entries map[string]*Entry
	resets  int64
}

// NewMissingIndexStore returns an empty store.
func NewMissingIndexStore() *MissingIndexStore {
	return &MissingIndexStore{entries: make(map[string]*Entry)}
}

// Observe records that optimizing queryHash (with estimated cost cost)
// surfaced candidate c with estimated improvement pct.
func (s *MissingIndexStore) Observe(c Candidate, queryHash uint64, cost, improvementPct float64, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := c.Key()
	e := s.entries[k]
	if e == nil {
		e = &Entry{Candidate: c, QueryHashes: make(map[uint64]int64), FirstSeen: now}
		s.entries[k] = e
	}
	// Running averages over seeks.
	n := float64(e.Seeks)
	e.AvgQueryCost = (e.AvgQueryCost*n + cost) / (n + 1)
	e.AvgImprovementPct = (e.AvgImprovementPct*n + improvementPct) / (n + 1)
	e.Seeks++
	e.LastSeen = now
	if _, ok := e.QueryHashes[queryHash]; ok || len(e.QueryHashes) < maxTrackedQueries {
		e.QueryHashes[queryHash]++
	}
}

// Snapshot returns a deep copy of the current entries, sorted by
// descending score. The recommender persists these snapshots to tolerate
// resets (§5.2).
func (s *MissingIndexStore) Snapshot() []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Score(), out[j].Score()
		if si != sj {
			return si > sj
		}
		return out[i].Candidate.Key() < out[j].Candidate.Key()
	})
	return out
}

// Reset clears the store, as a server restart, failover or schema change
// does to the real DMVs.
func (s *MissingIndexStore) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*Entry)
	s.resets++
}

// Resets reports how many times the store has been reset.
func (s *MissingIndexStore) Resets() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resets
}

// Len returns the number of distinct candidates currently accumulated.
func (s *MissingIndexStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
