package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module call graph that the interprocedural
// analyzers (lockorder, detflow, leakcheck) run over. The graph is
// deliberately conservative where Go is dynamic:
//
//   - static calls (pkg.F(), x.Method() on a concrete receiver, direct
//     function-literal invocation) resolve to exactly one node;
//   - interface method calls resolve to every module method with the
//     same name and an identical (receiver-stripped) signature — a
//     name-and-signature over-approximation of the implements relation
//     that stays correct across separately type-checked units;
//   - calls through function-typed values (variables, parameters,
//     struct fields, method values) resolve to every address-taken
//     function or literal whose signature matches the call.
//
// Over-approximating callees makes the fact propagation in
// interproc.go conservative in the safe direction for "may acquire" /
// "may taint" style facts. Calls into other modules (stdlib included)
// resolve to no node; analyzers treat those as opaque.

// A FuncNode is one function in the whole-module call graph: a declared
// function or method, or a function literal.
type FuncNode struct {
	// Key is the node's canonical cross-unit identity:
	// (*types.Func).FullName for declared functions — stable between a
	// package's own (test-augmented) type-check and the canonical form
	// other packages import — and the literal's position for FuncLits.
	Key string
	// Name is the display name used in diagnostics ("serve.(*Server).Shutdown",
	// "func literal at serve.go:226").
	Name string
	// Obj is the declared function's object; nil for literals.
	Obj *types.Func
	// Decl / Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Unit *Unit
	// Test marks nodes declared in _test.go files (or external test
	// packages). Interprocedural analyzers use it for SkipTests.
	Test bool
	// Calls lists the node's call sites in source order.
	Calls []*CallSite

	addressTaken bool
	sig          *types.Signature
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// A CallSite is one call expression inside a FuncNode, with its
// resolved module-internal targets.
type CallSite struct {
	Call *ast.CallExpr
	// Go / Defer mark `go f()` / `defer f()` launch sites.
	Go    bool
	Defer bool
	// Dynamic marks calls resolved by signature matching (interface
	// dispatch or function values) rather than direct reference.
	Dynamic bool
	// Callees are the resolved module-internal targets, in declaration
	// order. Empty for calls that leave the module.
	Callees []*FuncNode
}

// A Program is the whole-module view handed to interprocedural
// analyzers: every function in every unit, with call edges.
type Program struct {
	Fset  *token.FileSet
	Units []*Unit
	// Nodes holds every function in deterministic (file, offset) order.
	Nodes []*FuncNode

	byObj   map[*types.Func]*FuncNode
	byKey   map[string]*FuncNode
	byLit   map[*ast.FuncLit]*FuncNode
	callers map[*FuncNode][]*FuncNode
	// siteOf maps each call expression to its site, so analyzers
	// walking statement structure can look up resolved callees.
	siteOf map[*ast.CallExpr]*CallSite
}

// NodeForCall returns the call site record for call, or nil when call
// is not a tracked call (a conversion, or outside any function).
func (p *Program) SiteFor(call *ast.CallExpr) *CallSite { return p.siteOf[call] }

// Callers returns the nodes with at least one call site targeting n,
// in deterministic order.
func (p *Program) Callers(n *FuncNode) []*FuncNode { return p.callers[n] }

// NodeOf returns the node for a declared function object, resolving
// through the canonical key so objects from different type-check
// universes (a package's own unit vs. the form its importers see) land
// on the same node.
func (p *Program) NodeOf(obj *types.Func) *FuncNode {
	if n := p.byObj[obj]; n != nil {
		return n
	}
	return p.byKey[obj.FullName()]
}

// BuildProgram constructs the call graph over units. Units must share
// one token.FileSet (the loader guarantees this).
func BuildProgram(units []*Unit) *Program {
	p := &Program{
		Units:  units,
		byObj:  make(map[*types.Func]*FuncNode),
		byKey:  make(map[string]*FuncNode),
		byLit:  make(map[*ast.FuncLit]*FuncNode),
		siteOf: make(map[*ast.CallExpr]*CallSite),
	}
	if len(units) > 0 {
		p.Fset = units[0].Fset
	}

	// Pass 1: register every function declaration and literal.
	for _, u := range units {
		for _, f := range u.Files {
			test := u.TestFiles[f]
			ast.Inspect(f, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					obj, _ := u.Info.Defs[d.Name].(*types.Func)
					if obj == nil || d.Body == nil {
						return true
					}
					node := &FuncNode{
						Key:  obj.FullName(),
						Name: displayName(obj),
						Obj:  obj,
						Decl: d,
						Body: d.Body,
						Unit: u,
						Test: test,
						sig:  obj.Type().(*types.Signature),
					}
					p.byObj[obj] = node
					if _, dup := p.byKey[node.Key]; !dup {
						p.byKey[node.Key] = node
					}
					p.Nodes = append(p.Nodes, node)
				case *ast.FuncLit:
					pos := u.Fset.Position(d.Pos())
					sig, _ := u.Info.TypeOf(d.Type).(*types.Signature)
					node := &FuncNode{
						Key:  fmt.Sprintf("lit@%s:%d:%d", pos.Filename, pos.Line, pos.Column),
						Name: fmt.Sprintf("func literal at %s:%d", shortFile(pos.Filename), pos.Line),
						Lit:  d,
						Body: d.Body,
						Unit: u,
						Test: test,
						sig:  sig,
					}
					p.byLit[d] = node
					p.Nodes = append(p.Nodes, node)
				}
				return true
			})
		}
	}
	sort.Slice(p.Nodes, func(i, j int) bool {
		a, b := p.Fset.Position(p.Nodes[i].Pos()), p.Fset.Position(p.Nodes[j].Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})

	// Pass 2: find address-taken functions — declared functions or
	// method values referenced outside call position, and literals not
	// invoked directly. These are the candidate targets of calls
	// through function-typed values.
	funPos := make(map[ast.Node]bool) // exprs in call-Fun position
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					funPos[ast.Unparen(call.Fun)] = true
				}
				return true
			})
		}
	}
	for _, u := range units {
		for _, f := range u.Files {
			// The Sel ident of every selector is visited on its own by
			// Inspect; without excluding those, plain method calls
			// (x.M()) would mark M address-taken through the child
			// ident and every method would become a dynamic-dispatch
			// candidate.
			selIdents := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := n.(*ast.SelectorExpr); ok {
					selIdents[s.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.Ident:
					if funPos[ast.Node(x)] || selIdents[x] {
						return true
					}
					if fn, ok := u.Info.Uses[x].(*types.Func); ok {
						if node := p.NodeOf(fn); node != nil {
							node.addressTaken = true
						}
					}
				case *ast.SelectorExpr:
					if funPos[ast.Node(x)] {
						return true
					}
					if fn, ok := u.Info.Uses[x.Sel].(*types.Func); ok {
						if node := p.NodeOf(fn); node != nil {
							node.addressTaken = true
						}
					}
				case *ast.FuncLit:
					if !funPos[ast.Node(x)] {
						if node := p.byLit[x]; node != nil {
							node.addressTaken = true
						}
					}
				}
				return true
			})
		}
	}

	// Dynamic-dispatch indexes: methods by name, and address-taken
	// functions by receiver-stripped signature string.
	methodsByName := make(map[string][]*FuncNode)
	takenBySig := make(map[string][]*FuncNode)
	for _, n := range p.Nodes {
		if n.Obj != nil && n.sig.Recv() != nil {
			methodsByName[n.Obj.Name()] = append(methodsByName[n.Obj.Name()], n)
		}
		if n.addressTaken && n.sig != nil {
			takenBySig[sigString(n.sig)] = append(takenBySig[sigString(n.sig)], n)
		}
	}

	// Pass 3: resolve call sites.
	for _, node := range p.Nodes {
		p.resolveCalls(node, methodsByName, takenBySig)
	}

	// Reverse edges.
	p.callers = make(map[*FuncNode][]*FuncNode)
	for _, n := range p.Nodes {
		seen := make(map[*FuncNode]bool)
		for _, cs := range n.Calls {
			for _, c := range cs.Callees {
				if !seen[c] {
					seen[c] = true
					p.callers[c] = append(p.callers[c], n)
				}
			}
		}
	}
	return p
}

// resolveCalls walks node's body (not descending into nested literals,
// which are their own nodes) and records one CallSite per call.
func (p *Program) resolveCalls(node *FuncNode, methodsByName, takenBySig map[string][]*FuncNode) {
	u := node.Unit
	launch := make(map[*ast.CallExpr]token.Token) // GO or DEFER
	walkFuncBody(node, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.GoStmt:
			launch[s.Call] = token.GO
		case *ast.DeferStmt:
			launch[s.Call] = token.DEFER
		}
	})
	walkFuncBody(node, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() {
			return // conversion, not a call
		}
		cs := &CallSite{
			Call:  call,
			Go:    launch[call] == token.GO,
			Defer: launch[call] == token.DEFER,
		}
		fun := ast.Unparen(call.Fun)
		switch f := fun.(type) {
		case *ast.FuncLit:
			if lit := p.byLit[f]; lit != nil {
				cs.Callees = []*FuncNode{lit}
			}
		case *ast.Ident:
			switch obj := u.Info.Uses[f].(type) {
			case *types.Builtin, *types.TypeName, nil:
				return
			case *types.Func:
				if t := p.NodeOf(obj); t != nil {
					cs.Callees = []*FuncNode{t}
				}
			case *types.Var:
				cs.Dynamic = true
				cs.Callees = matchSig(takenBySig, obj.Type())
			}
		case *ast.SelectorExpr:
			if sel, ok := u.Info.Selections[f]; ok {
				switch sel.Kind() {
				case types.MethodVal:
					fn := sel.Obj().(*types.Func)
					if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
						cs.Dynamic = true
						cs.Callees = matchMethods(methodsByName[fn.Name()], fn)
					} else if t := p.NodeOf(fn); t != nil {
						cs.Callees = []*FuncNode{t}
					}
				case types.FieldVal:
					cs.Dynamic = true
					cs.Callees = matchSig(takenBySig, sel.Type())
				default:
					return
				}
			} else {
				switch obj := u.Info.Uses[f.Sel].(type) {
				case *types.Func: // qualified pkg.F
					if t := p.NodeOf(obj); t != nil {
						cs.Callees = []*FuncNode{t}
					}
				case *types.Var: // qualified package-level func var
					cs.Dynamic = true
					cs.Callees = matchSig(takenBySig, obj.Type())
				default:
					return
				}
			}
		default:
			// Call of a call result, index expression, etc.
			if t := u.Info.TypeOf(fun); t != nil {
				if _, ok := t.Underlying().(*types.Signature); ok {
					cs.Dynamic = true
					cs.Callees = matchSig(takenBySig, t)
				}
			}
		}
		node.Calls = append(node.Calls, cs)
		p.siteOf[call] = cs
	})
}

// walkFuncBody visits every node in the function's own body without
// descending into nested function literals (each literal is its own
// FuncNode). The literal expression itself is visited.
func walkFuncBody(node *FuncNode, visit func(ast.Node)) {
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != node.Lit {
			visit(n)
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// matchSig returns address-taken nodes whose signature renders
// identically to t's underlying signature.
func matchSig(takenBySig map[string][]*FuncNode, t types.Type) []*FuncNode {
	if t == nil {
		return nil
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return takenBySig[sigString(sig)]
}

// matchMethods returns the candidate implementations of interface
// method fn: module methods with the same name and identical
// receiver-stripped signature. Name+signature matching (rather than
// types.Implements) stays correct when the interface and the
// implementation come from different type-check universes of the same
// module; the cost is a few extra edges between identically-shaped
// methods, which only makes facts more conservative.
func matchMethods(candidates []*FuncNode, fn *types.Func) []*FuncNode {
	want := sigString(fn.Type().(*types.Signature))
	var out []*FuncNode
	for _, c := range candidates {
		if sigString(c.sig) == want {
			out = append(out, c)
		}
	}
	return out
}

// sigString renders a signature with package-path qualification and no
// receiver or parameter names, as the cross-universe comparison key.
// types.TypeString alone would keep parameter names, so func(n int) and
// func(int) — identical types — would never match.
func sigString(sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteString("func(")
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		t := sig.Params().At(i).Type()
		if sig.Variadic() && i == sig.Params().Len()-1 {
			b.WriteString("...")
			t = t.(*types.Slice).Elem()
		}
		b.WriteString(types.TypeString(t, qual))
	}
	b.WriteByte(')')
	for i := 0; i < sig.Results().Len(); i++ {
		b.WriteByte(',')
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	return b.String()
}

// displayName renders a declared function for diagnostics:
// "engine.(*LockManager).AcquireExclusive", "serve.New".
func displayName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		ptr := ""
		if pt, ok := rt.(*types.Pointer); ok {
			rt = pt.Elem()
			ptr = "*"
		}
		if named, ok := rt.(*types.Named); ok {
			return fmt.Sprintf("%s(%s%s).%s", pkg, ptr, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
