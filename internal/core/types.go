// Package core defines the shared vocabulary of the auto-indexing service:
// index candidates with estimated impact, recommendations and their
// sources, conservative index merging [12], and workload coverage
// (§5.1.2). Both recommenders produce core.Candidate values; the control
// plane turns them into core.Recommendation records whose lifecycle it
// drives.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"autoindex/internal/schema"
)

// Source identifies which recommender produced a candidate.
type Source string

// Recommendation sources.
const (
	SourceMI   Source = "MissingIndexes"
	SourceDTA  Source = "DTA"
	SourceDrop Source = "DropAnalysis"
	SourceUser Source = "User"
)

// Candidate is an index creation candidate with its estimated impact.
type Candidate struct {
	Def schema.IndexDef
	// EstImprovement is the optimizer-estimated cost-unit reduction over
	// the analysis window.
	EstImprovement float64
	// EstImprovementPct is the estimated percentage improvement of the
	// statements it impacts.
	EstImprovementPct float64
	EstSizeBytes      int64
	// ImpactedQueries lists fingerprints of statements expected to improve
	// (exposed in the recommendation details UI, Fig. 3).
	ImpactedQueries []uint64
	Source          Source
	// Features feeds the MI low-impact classifier and, later, validation
	// outcome training (§5.2).
	Features []float64
}

// MergeImpacted unions two impacted-query lists.
func MergeImpacted(a, b []uint64) []uint64 {
	seen := make(map[uint64]bool, len(a)+len(b))
	var out []uint64
	for _, lists := range [][]uint64{a, b} {
		for _, q := range lists {
			if !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Action is what a recommendation does.
type Action int

// Recommendation actions.
const (
	ActionCreateIndex Action = iota
	ActionDropIndex
)

// String names the action.
func (a Action) String() string {
	if a == ActionDropIndex {
		return "DROP INDEX"
	}
	return "CREATE INDEX"
}

// Recommendation is one unit of work the control plane manages.
type Recommendation struct {
	ID       string
	Database string
	Action   Action
	Index    schema.IndexDef

	EstImprovement    float64
	EstImprovementPct float64
	EstSizeBytes      int64
	ImpactedQueries   []uint64
	Source            Source
	Features          []float64

	CreatedAt time.Time
}

// Describe renders the one-line UI summary (Fig. 2).
func (r *Recommendation) Describe() string {
	return fmt.Sprintf("%s %s ON %s (%s)%s — est. impact %.1f%%",
		r.Action, r.Index.Name, r.Index.Table,
		strings.Join(r.Index.KeyColumns, ", "),
		includeSuffix(r.Index), r.EstImprovementPct)
}

func includeSuffix(d schema.IndexDef) string {
	if len(d.IncludedColumns) == 0 {
		return ""
	}
	return " INCLUDE (" + strings.Join(d.IncludedColumns, ", ") + ")"
}

// ConservativeMerge merges creation candidates as §5.2 describes: exact
// duplicates pool their benefit; a candidate whose key columns are a
// prefix of another's is folded into the longer one (its include columns
// unioned in) when the merged index's aggregate benefit is at least that
// of the better single candidate. Merging never invents new key orders —
// that is what keeps it conservative.
func ConservativeMerge(cands []Candidate) []Candidate {
	// Pass 1: pool exact structural duplicates.
	bySig := make(map[string]*Candidate)
	var order []string
	for _, c := range cands {
		sig := c.Def.Signature()
		if ex, ok := bySig[sig]; ok {
			ex.EstImprovement += c.EstImprovement
			if c.EstImprovementPct > ex.EstImprovementPct {
				ex.EstImprovementPct = c.EstImprovementPct
			}
			ex.ImpactedQueries = MergeImpacted(ex.ImpactedQueries, c.ImpactedQueries)
			continue
		}
		cc := c
		cc.Def = c.Def.Clone()
		bySig[sig] = &cc
		order = append(order, sig)
	}
	list := make([]*Candidate, 0, len(order))
	for _, sig := range order {
		list = append(list, bySig[sig])
	}

	// Pass 2: fold key-prefix candidates into their extensions.
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(list); i++ {
			for j := 0; j < len(list); j++ {
				if i == j || list[i] == nil || list[j] == nil {
					continue
				}
				a, b := list[i], list[j]
				if !strings.EqualFold(a.Def.Table, b.Def.Table) {
					continue
				}
				if !a.Def.KeyPrefixOf(b.Def) || a.Def.SameKey(b.Def) {
					continue
				}
				// Fold a into b: b's key covers a's seeks; union includes.
				combined := b.EstImprovement + a.EstImprovement
				if combined < maxf(a.EstImprovement, b.EstImprovement) {
					continue
				}
				b.Def.IncludedColumns = unionColumns(b.Def, a.Def.IncludedColumns)
				// Key columns of a beyond its own key never exist (prefix),
				// but a's range column may be b's later key column — already
				// covered by the prefix rule.
				b.EstImprovement = combined
				if a.EstImprovementPct > b.EstImprovementPct {
					b.EstImprovementPct = a.EstImprovementPct
				}
				b.ImpactedQueries = MergeImpacted(b.ImpactedQueries, a.ImpactedQueries)
				list[i] = nil
				merged = true
			}
		}
		if merged {
			compact := list[:0]
			for _, c := range list {
				if c != nil {
					compact = append(compact, c)
				}
			}
			list = compact
		}
	}
	out := make([]Candidate, 0, len(list))
	for _, c := range list {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EstImprovement != out[j].EstImprovement {
			return out[i].EstImprovement > out[j].EstImprovement
		}
		return out[i].Def.Signature() < out[j].Def.Signature()
	})
	return out
}

// unionColumns adds cols to d's include list, skipping any column already
// present as key or include.
func unionColumns(d schema.IndexDef, cols []string) []string {
	out := append([]string(nil), d.IncludedColumns...)
	for _, c := range cols {
		if !d.HasColumn(c) {
			out = append(out, c)
			d.IncludedColumns = append(d.IncludedColumns, c) // keep HasColumn current
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Coverage is the workload-coverage measure (§5.1.2): the resources
// consumed by analyzed statements as a fraction of all resources.
type Coverage struct {
	AnalyzedCPU float64
	TotalCPU    float64
}

// Fraction returns the coverage in [0, 1].
func (c Coverage) Fraction() float64 {
	if c.TotalCPU <= 0 {
		return 0
	}
	f := c.AnalyzedCPU / c.TotalCPU
	if f > 1 {
		return 1
	}
	return f
}

// String renders the coverage as a percentage.
func (c Coverage) String() string {
	return fmt.Sprintf("%.1f%%", c.Fraction()*100)
}
