package analysis

import (
	"go/ast"
	"go/parser"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// buildTestProgram type-checks one in-memory source file and builds the
// whole-module call graph over it as a single unit.
func buildTestProgram(t *testing.T, filename, src string) *Program {
	t.Helper()
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(l.fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	pkg, info, err := l.check("autoindex/internal/analysis/cg", []*ast.File{f}, nil)
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	u := &Unit{
		Path:      "autoindex/internal/analysis/cg",
		Fset:      l.fset,
		Files:     []*ast.File{f},
		TestFiles: make(map[*ast.File]bool),
		Pkg:       pkg,
		Info:      info,
	}
	return BuildProgram([]*Unit{u})
}

// programEdges flattens the graph to caller display name → sorted,
// deduplicated callee display names. Every node appears as a key, so an
// empty edge set is observable.
func programEdges(p *Program) map[string][]string {
	edges := make(map[string][]string)
	for _, n := range p.Nodes {
		seen := make(map[string]bool)
		edges[n.Name] = []string{}
		for _, cs := range n.Calls {
			for _, c := range cs.Callees {
				if !seen[c.Name] {
					seen[c.Name] = true
					edges[n.Name] = append(edges[n.Name], c.Name)
				}
			}
		}
		sort.Strings(edges[n.Name])
	}
	return edges
}

// anyDynamic reports whether the named caller has at least one call
// site resolved by signature matching rather than direct reference.
func anyDynamic(p *Program, caller string) bool {
	for _, n := range p.Nodes {
		if n.Name != caller {
			continue
		}
		for _, cs := range n.Calls {
			if cs.Dynamic {
				return true
			}
		}
	}
	return false
}

// TestCallGraphResolution pins the builder's resolution rules: static
// calls and recursion resolve to exactly one node, interface dispatch
// fans out to same-name same-signature methods only, method values and
// function-typed fields resolve through the address-taken index, and a
// plain method call does NOT make its method a dynamic-dispatch
// candidate.
func TestCallGraphResolution(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// edges gives the exact expected callee set for each listed
		// caller (display names); callers not listed are not checked.
		edges map[string][]string
		// dynamic gives the expected "has a dynamic call site" flag for
		// each listed caller.
		dynamic map[string]bool
	}{
		{
			name: "static call and recursion",
			src: `package cg

func walkTree(depth int) int {
	if depth <= 0 {
		return leafCost()
	}
	return walkTree(depth-1) + 1
}

func leafCost() int { return 1 }
`,
			edges: map[string][]string{
				"cg.walkTree": {"cg.leafCost", "cg.walkTree"},
				"cg.leafCost": {},
			},
			dynamic: map[string]bool{"cg.walkTree": false},
		},
		{
			name: "interface dispatch matches name and signature",
			src: `package cg

type coster interface{ cost() int }

type seekCost struct{}

func (seekCost) cost() int { return 2 }

type scanCost struct{}

func (scanCost) cost() int { return 9 }

// colStats.cost has a different signature: never a candidate.
type colStats struct{}

func (colStats) cost(rows int) int { return rows }

func total(cs []coster) int {
	sum := 0
	for _, c := range cs {
		sum += c.cost()
	}
	return sum
}
`,
			edges: map[string][]string{
				"cg.total": {"cg.(scanCost).cost", "cg.(seekCost).cost"},
			},
			dynamic: map[string]bool{"cg.total": true},
		},
		{
			name: "method value call resolves to the taken method",
			src: `package cg

type retryQueue struct{ n int }

func (q *retryQueue) drain() { q.n = 0 }

func run(q *retryQueue) {
	hook := q.drain
	hook()
}
`,
			edges: map[string][]string{
				"cg.run": {"cg.(*retryQueue).drain"},
			},
			dynamic: map[string]bool{"cg.run": true},
		},
		{
			name: "function-typed field call matches by signature",
			src: `package cg

type flusher struct{ onFlush func(int) }

func logFlush(n int) {}

// dropFlush is address-taken but has the wrong signature for onFlush.
func dropFlush() {}

var dropHook = dropFlush

func wire(f *flusher) { f.onFlush = logFlush }

func flush(f *flusher) { f.onFlush(3) }
`,
			edges: map[string][]string{
				"cg.flush": {"cg.logFlush"},
				"cg.wire":  {},
			},
			dynamic: map[string]bool{"cg.flush": true},
		},
		{
			name: "plain method call is static and not address-taken",
			src: `package cg

type ticker struct{ n int }

func (tk *ticker) tick() { tk.n++ }

func poll(tk *ticker) { tk.tick() }

// invoke's h() must NOT resolve to tick: tick is only ever called
// directly, never referenced as a value.
func invoke(h func()) { h() }
`,
			edges: map[string][]string{
				"cg.poll":   {"cg.(*ticker).tick"},
				"cg.invoke": {},
			},
			dynamic: map[string]bool{"cg.poll": false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			filename := strings.ReplaceAll(tc.name, " ", "_") + ".go"
			p := buildTestProgram(t, filename, tc.src)
			got := programEdges(p)
			for caller, want := range tc.edges {
				g, ok := got[caller]
				if !ok {
					t.Errorf("no node named %s in graph (have %v)", caller, nodeNames(p))
					continue
				}
				if strings.Join(g, ",") != strings.Join(want, ",") {
					t.Errorf("%s callees = %v, want %v", caller, g, want)
				}
			}
			for caller, want := range tc.dynamic {
				if gotDyn := anyDynamic(p, caller); gotDyn != want {
					t.Errorf("%s dynamic = %v, want %v", caller, gotDyn, want)
				}
			}
		})
	}
}

func nodeNames(p *Program) []string {
	var names []string
	for _, n := range p.Nodes {
		names = append(names, n.Name)
	}
	return names
}

// TestCallGraphReverseEdges checks Callers: recursion makes a node its
// own caller, and dynamic dispatch contributes reverse edges too.
func TestCallGraphReverseEdges(t *testing.T) {
	src := `package cg

type waker interface{ wake() }

type clockWake struct{}

func (clockWake) wake() { ping() }

func ping() { ping() }

func fire(w waker) { w.wake() }
`
	p := buildTestProgram(t, "reverse.go", src)
	callersOf := func(name string) []string {
		for _, n := range p.Nodes {
			if n.Name != name {
				continue
			}
			var out []string
			for _, c := range p.Callers(n) {
				out = append(out, c.Name)
			}
			sort.Strings(out)
			return out
		}
		t.Fatalf("no node named %s", name)
		return nil
	}
	if got := callersOf("cg.ping"); strings.Join(got, ",") != "cg.(clockWake).wake,cg.ping" {
		t.Errorf("callers of ping = %v, want [cg.(clockWake).wake cg.ping]", got)
	}
	if got := callersOf("cg.(clockWake).wake"); strings.Join(got, ",") != "cg.fire" {
		t.Errorf("callers of wake = %v, want [cg.fire]", got)
	}
}
