package faults

import (
	"testing"
)

// schedule draws n decisions for each of the given points and returns
// them flattened in point order.
func schedule(in *Injector, points []Point, n int) []bool {
	var out []bool
	for _, p := range points {
		for i := 0; i < n; i++ {
			out = append(out, in.Should(p))
		}
	}
	return out
}

func TestScheduleDeterministicForSeed(t *testing.T) {
	rates := map[Point]float64{
		IndexBuildLogFull:     0.3,
		IndexBuildLockTimeout: 0.3,
		PlaneCrashBeforeSave:  0.2,
	}
	points := []Point{IndexBuildLogFull, IndexBuildLockTimeout, PlaneCrashBeforeSave}
	a := schedule(New(42, "db001", rates), points, 200)
	b := schedule(New(42, "db001", rates), points, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical injectors", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("no fault fired at 20-30% rates over 600 draws")
	}
}

func TestScopesAreIndependentStreams(t *testing.T) {
	rates := map[Point]float64{IndexBuildLogFull: 0.5}
	a := schedule(New(42, "db001", rates), []Point{IndexBuildLogFull}, 100)
	b := schedule(New(42, "db002", rates), []Point{IndexBuildLogFull}, 100)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different scopes produced identical schedules")
	}
}

// Adding a new point, or drawing from one point, must not perturb another
// point's schedule — each point owns a private child stream.
func TestPointStreamsAreIndependent(t *testing.T) {
	only := New(7, "s", map[Point]float64{IndexBuildLogFull: 0.4})
	var want []bool
	for i := 0; i < 100; i++ {
		want = append(want, only.Should(IndexBuildLogFull))
	}
	both := New(7, "s", map[Point]float64{IndexBuildLogFull: 0.4, DropLockTimeout: 0.9})
	for i := 0; i < 100; i++ {
		both.Should(DropLockTimeout) // interleave draws at another point
		if got := both.Should(IndexBuildLogFull); got != want[i] {
			t.Fatalf("draw %d at log-full changed because drop-lock-timeout was drawn", i)
		}
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Should(IndexBuildLogFull) {
		t.Fatal("nil injector fired")
	}
	in.Disable()
	in.Enable()
	if in.Fired() != nil || in.TotalFired() != 0 || in.Scope() != "" {
		t.Fatal("nil injector accessors must be zero-valued")
	}
}

func TestDisableStopsFiringButKeepsSchedule(t *testing.T) {
	rates := map[Point]float64{IndexBuildLogFull: 0.5}
	ref := New(11, "s", rates)
	var want []bool
	for i := 0; i < 60; i++ {
		want = append(want, ref.Should(IndexBuildLogFull))
	}

	in := New(11, "s", rates)
	for i := 0; i < 20; i++ {
		if got := in.Should(IndexBuildLogFull); got != want[i] {
			t.Fatalf("pre-disable draw %d mismatch", i)
		}
	}
	in.Disable()
	for i := 20; i < 40; i++ {
		if in.Should(IndexBuildLogFull) {
			t.Fatal("disabled injector fired")
		}
	}
	in.Enable()
	// Draws advanced while disabled, so the re-enabled schedule continues
	// exactly where the reference stream is.
	for i := 40; i < 60; i++ {
		if got := in.Should(IndexBuildLogFull); got != want[i] {
			t.Fatalf("post-enable draw %d diverged from reference", i)
		}
	}
}

func TestUnconfiguredPointConsumesNothing(t *testing.T) {
	in := New(3, "s", map[Point]float64{IndexBuildLogFull: 0.5})
	ref := New(3, "s", map[Point]float64{IndexBuildLogFull: 0.5})
	for i := 0; i < 50; i++ {
		in.Should(TelemetryDropEvent) // not configured: no draw, never fires
		if in.Should(IndexBuildLogFull) != ref.Should(IndexBuildLogFull) {
			t.Fatalf("unconfigured point perturbed configured stream at draw %d", i)
		}
	}
	if in.Fired()[TelemetryDropEvent] != 0 {
		t.Fatal("unconfigured point fired")
	}
}

func TestFiredCountersAndFormatting(t *testing.T) {
	in := New(5, "s", map[Point]float64{IndexBuildLogFull: 1.0, DropLockTimeout: 1.0})
	for i := 0; i < 3; i++ {
		in.Should(IndexBuildLogFull)
	}
	in.Should(DropLockTimeout)
	if in.TotalFired() != 4 {
		t.Fatalf("total fired = %d, want 4", in.TotalFired())
	}
	merged := MergeFired(nil, in.Fired())
	merged = MergeFired(merged, map[Point]int64{IndexBuildLogFull: 2})
	if merged[IndexBuildLogFull] != 5 {
		t.Fatalf("merge: %v", merged)
	}
	lines := FormatFired(merged)
	if len(lines) != 2 {
		t.Fatalf("lines: %v", lines)
	}
	// Registry order: log-full is registered before drop-lock-timeout.
	if lines[0] != "engine/index-build/log-full=5" {
		t.Fatalf("ordering: %v", lines)
	}
}

func TestRegistryCoversEveryDeclaredPoint(t *testing.T) {
	declared := []Point{
		IndexBuildLogFull, IndexBuildLockTimeout, IndexBuildAbort, DropLockTimeout,
		PlaneCrashBeforeSave, PlaneCrashAfterSave, TelemetryDropEvent, QueryStoreDropExecution,
	}
	reg := make(map[Point]bool)
	for _, pi := range Points() {
		if pi.Description == "" {
			t.Errorf("point %s has no description", pi.Point)
		}
		reg[pi.Point] = true
	}
	for _, p := range declared {
		if !reg[p] {
			t.Errorf("point %s missing from registry", p)
		}
	}
	if len(reg) != len(declared) {
		t.Errorf("registry has %d points, %d declared", len(reg), len(declared))
	}
}

func TestCrashString(t *testing.T) {
	c := Crash{Point: PlaneCrashBeforeSave}
	if c.String() == "" {
		t.Fatal("empty crash description")
	}
}
