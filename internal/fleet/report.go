package fleet

import (
	"fmt"
	"strings"
)

// Report renders the §8.1 operational-statistics block exactly as the
// fleetsim binary prints it. Living here (rather than in the command) it
// doubles as the determinism witness: the test suite asserts the report
// is byte-identical across worker counts for the same seed.
func (r *OpsResult) Report() string {
	s := r.Stats
	var b strings.Builder
	b.WriteString("operational statistics (cf. §8.1):\n")
	fmt.Fprintf(&b, "  databases managed:                 %d\n", s.Databases)
	fmt.Fprintf(&b, "  create recommendations:            %d\n", s.CreateRecommended)
	fmt.Fprintf(&b, "  drop recommendations:               %d (paper: drops outnumber creates ~14:1 on a mature fleet)\n", s.DropRecommended)
	fmt.Fprintf(&b, "  indexes auto-created / dropped:    %d / %d\n", s.CreatesImplemented, s.DropsImplemented)
	fmt.Fprintf(&b, "  validations / reverts:             %d / %d (%.1f%%)\n", s.Validations, s.Reverts, s.RevertRate*100)
	fmt.Fprintf(&b, "  queries >2x cheaper:               %d\n", r.QueriesTwiceFaster)
	fmt.Fprintf(&b, "  databases with >50%% CPU reduction: %d\n", r.DatabasesHalvedCPU)
	fmt.Fprintf(&b, "  steady-state databases:            %d\n", r.SteadyStateDatabases)
	fmt.Fprintf(&b, "  incidents:                         %d\n", s.Incidents)
	return b.String()
}

// RevertReport renders the §8.1 revert-analysis block (the fleetsim
// "reverts" experiment output).
func (r *OpsResult) RevertReport() string {
	s := r.Stats
	hub := r.Plane.Telemetry()
	var b strings.Builder
	b.WriteString("revert analysis (paper: ~11% of automated actions reverted; MI reverts skew\n")
	b.WriteString("to writes becoming more expensive; SELECT regressions implicate optimizer error):\n")
	fmt.Fprintf(&b, "  implemented actions:        %d\n", s.CreatesImplemented+s.DropsImplemented)
	fmt.Fprintf(&b, "  reverts:                    %d (%.1f%%)\n", s.Reverts, s.RevertRate*100)
	fmt.Fprintf(&b, "  write-regression reverts:   %d (of which MI-sourced: %d)\n",
		hub.Counter("reverts.write_regression"), hub.Counter("reverts.write_regression.mi"))
	fmt.Fprintf(&b, "  SELECT-regression reverts:  %d\n", hub.Counter("reverts.select_regression"))
	return b.String()
}
