package fleet

import (
	"io"
	"runtime"
	"runtime/debug"
	"testing"
)

// perTenantBudgetBytes is the committed steady-state memory budget for
// one resident scale-mode tenant at Scale 0.25, measured as the peak
// heap delta of a fully-resident 1k-tenant run divided by the tenant
// count. The budget is ~2x the measured footprint (2.7 MB when set; see
// EXPERIMENTS.md "Scale-mode memory methodology") so ordinary GC noise
// never trips it, while a real regression — a tenant copying what it
// should alias from the shared catalog, a snapshot retained past
// rehydration — blows straight through. Revisit the constant
// deliberately, with a fresh measurement, never by bumping it to green a
// failing run.
const perTenantBudgetBytes = 6 << 20

// TestScaleMemoryBudget is the memory-footprint regression gate (wired
// into `make bench-gate`): a 1k-tenant fully-resident scale run must fit
// the committed per-tenant budget. Copy-on-write sharing is what makes
// this budget possible at all — each tenant pays for its B+ tree nodes,
// query store and DMVs, not for its schema, base rows or histograms.
func TestScaleMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("scale simulation is slow")
	}
	if raceEnabled {
		t.Skip("race-detector shadow memory invalidates the footprint measurement")
	}
	// Keep HeapAlloc tracking the live set rather than collectible garbage:
	// the run's peak is sampled at hour barriers without forcing GC.
	old := debug.SetGCPercent(20)
	defer debug.SetGCPercent(old)
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	const tenants = 1000
	spec := DefaultScaleSpec(tenants, 2)
	spec.Archetypes = 2
	spec.Scale = 0.25
	spec.ActiveFraction = 1.0 // every tenant resident every hour
	spec.StatementsPerHour = 4
	spec.Stream = io.Discard
	res, err := RunScale(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakResident != tenants {
		t.Fatalf("expected all %d tenants resident at peak, got %d", tenants, res.PeakResident)
	}
	if res.PeakHeapBytes <= m0.HeapAlloc {
		t.Fatalf("degenerate measurement: peak heap %d <= baseline %d", res.PeakHeapBytes, m0.HeapAlloc)
	}
	perTenant := (res.PeakHeapBytes - m0.HeapAlloc) / tenants
	t.Logf("per-tenant steady-state footprint: %d bytes (budget %d)", perTenant, perTenantBudgetBytes)
	if perTenant > perTenantBudgetBytes {
		t.Fatalf("per-tenant footprint %d bytes exceeds committed budget %d bytes — a COW or hibernation leak, or a deliberate change that needs a re-measured budget",
			perTenant, perTenantBudgetBytes)
	}
}
