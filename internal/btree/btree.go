// Package btree implements an in-memory B+ tree over composite keys. It is
// the physical structure behind clustered and non-clustered indexes in the
// engine. Leaf nodes are chained for range scans; the tree reports its
// height and leaf count so the executor can charge realistic logical-IO
// costs for seeks and scans.
package btree

import (
	"fmt"

	"autoindex/internal/value"
)

// DefaultOrder is the fan-out used when none is specified. It is low enough
// that realistic tables have height 3–4, exercising multi-level seek costs.
const DefaultOrder = 64

// Entry is a leaf record: a composite key and its payload row (for a
// clustered index the full row; for a non-clustered index the included
// columns plus row locator).
type Entry struct {
	Key     value.Key
	Payload value.Row
}

// Tree is a B+ tree. Keys must be unique; callers implementing non-unique
// indexes append a unique row locator as the final key component.
type Tree struct {
	order int
	root  *node
	size  int
}

type node struct {
	leaf     bool
	keys     []value.Key
	payloads []value.Row // leaf only, parallel to keys
	children []*node     // interior only, len(keys)+1
	next     *node       // leaf chain
}

// New returns an empty tree with the given order (max children per interior
// node). Orders below 4 are raised to 4.
func New(order int) *Tree {
	if order < 4 {
		order = 4
	}
	return &Tree{order: order, root: &node{leaf: true}}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// LeafCount returns the number of leaf nodes, the scan-cost unit.
func (t *Tree) LeafCount() int {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	count := 0
	for ; n != nil; n = n.next {
		count++
	}
	return count
}

// maxKeys is the maximum keys a node may hold.
func (t *Tree) maxKeys() int { return t.order - 1 }

// Insert adds or replaces the entry for key. It reports whether a new key
// was inserted (false means an existing payload was replaced).
func (t *Tree) Insert(key value.Key, payload value.Row) bool {
	newChild, newKey, added := t.insert(t.root, key, payload)
	if newChild != nil {
		root := &node{
			keys:     []value.Key{newKey},
			children: []*node{t.root, newChild},
		}
		t.root = root
	}
	if added {
		t.size++
	}
	return added
}

// insert descends into n; on split it returns the new right sibling and its
// separator key.
func (t *Tree) insert(n *node, key value.Key, payload value.Row) (*node, value.Key, bool) {
	if n.leaf {
		i, found := n.search(key)
		if found {
			n.payloads[i] = payload
			return nil, nil, false
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.payloads = append(n.payloads, nil)
		copy(n.payloads[i+1:], n.payloads[i:])
		n.payloads[i] = payload
		if len(n.keys) > t.maxKeys() {
			right, sep := t.splitLeaf(n)
			return right, sep, true
		}
		return nil, nil, true
	}
	i, _ := n.search(key)
	child := n.children[i]
	newChild, sep, added := t.insert(child, key, payload)
	if newChild == nil {
		return nil, nil, added
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.keys) > t.maxKeys() {
		right, s := t.splitInterior(n)
		return right, s, added
	}
	return nil, nil, added
}

func (t *Tree) splitLeaf(n *node) (*node, value.Key) {
	mid := len(n.keys) / 2
	right := &node{
		leaf:     true,
		keys:     append([]value.Key(nil), n.keys[mid:]...),
		payloads: append([]value.Row(nil), n.payloads[mid:]...),
		next:     n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.payloads = n.payloads[:mid:mid]
	n.next = right
	return right, right.keys[0]
}

func (t *Tree) splitInterior(n *node) (*node, value.Key) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([]value.Key(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return right, sep
}

// search returns the position of key within the node. For leaves it is the
// index where key is or should be inserted, with found reporting an exact
// match. For interior nodes it is the child index to descend into.
func (n *node) search(key value.Key) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		c := value.CompareKeys(n.keys[mid], key)
		switch {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			if n.leaf {
				return mid, true
			}
			return mid + 1, true
		}
	}
	return lo, false
}

// Get returns the payload for key.
func (t *Tree) Get(key value.Key) (value.Row, bool) {
	n := t.root
	for !n.leaf {
		i, _ := n.search(key)
		n = n.children[i]
	}
	i, found := n.search(key)
	if !found {
		return nil, false
	}
	return n.payloads[i], true
}

// Delete removes key, reporting whether it was present. Nodes are allowed
// to underflow (no rebalancing); deletes in the engine are rare relative to
// scans, and scans tolerate sparse leaves. Empty leaves are skipped by
// iterators.
func (t *Tree) Delete(key value.Key) bool {
	n := t.root
	for !n.leaf {
		i, _ := n.search(key)
		n = n.children[i]
	}
	i, found := n.search(key)
	if !found {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.payloads = append(n.payloads[:i], n.payloads[i+1:]...)
	t.size--
	return true
}

// Iterator walks leaf entries in key order.
type Iterator struct {
	n   *node
	idx int
	// hi is the exclusive/inclusive upper bound; nil means unbounded.
	hi     value.Key
	hiIncl bool
}

// Seek returns an iterator positioned at the first entry >= lo (or > lo if
// loIncl is false). Pass nil lo to start at the beginning. hi bounds the
// scan; nil means scan to the end.
func (t *Tree) Seek(lo value.Key, loIncl bool, hi value.Key, hiIncl bool) *Iterator {
	n := t.root
	if lo == nil {
		for !n.leaf {
			n = n.children[0]
		}
		return &Iterator{n: n, idx: 0, hi: hi, hiIncl: hiIncl}
	}
	for !n.leaf {
		i, _ := n.search(lo)
		n = n.children[i]
	}
	i, found := n.search(lo)
	if found && !loIncl {
		i++
	}
	it := &Iterator{n: n, idx: i, hi: hi, hiIncl: hiIncl}
	// When !loIncl and duplicates of the prefix exist, advance past all
	// entries whose full key still compares <= lo is unnecessary: keys are
	// unique, so a single step suffices.
	return it
}

// Next returns the next entry and false when the scan is exhausted.
func (it *Iterator) Next() (Entry, bool) {
	for it.n != nil {
		if it.idx >= len(it.n.keys) {
			it.n = it.n.next
			it.idx = 0
			continue
		}
		k := it.n.keys[it.idx]
		if it.hi != nil {
			c := value.CompareKeys(k, it.hi)
			if c > 0 || (c == 0 && !it.hiIncl) {
				it.n = nil
				return Entry{}, false
			}
		}
		e := Entry{Key: k, Payload: it.n.payloads[it.idx]}
		it.idx++
		return e, true
	}
	return Entry{}, false
}

// Ascend calls fn for every entry in key order, stopping early if fn
// returns false.
func (t *Tree) Ascend(fn func(Entry) bool) {
	it := t.Seek(nil, true, nil, true)
	for {
		e, ok := it.Next()
		if !ok {
			return
		}
		if !fn(e) {
			return
		}
	}
}

// CheckInvariants verifies structural invariants: sorted keys within nodes,
// separator correctness, leaf chain order and size agreement. It is used by
// property-based tests.
func (t *Tree) CheckInvariants() error {
	count := 0
	var prev value.Key
	var walk func(n *node, lo, hi value.Key) error
	walk = func(n *node, lo, hi value.Key) error {
		for i := 1; i < len(n.keys); i++ {
			if value.CompareKeys(n.keys[i-1], n.keys[i]) >= 0 {
				return fmt.Errorf("btree: keys out of order in node")
			}
		}
		if n.leaf {
			if len(n.keys) != len(n.payloads) {
				return fmt.Errorf("btree: leaf keys/payloads mismatch")
			}
			for _, k := range n.keys {
				if lo != nil && value.CompareKeys(k, lo) < 0 {
					return fmt.Errorf("btree: leaf key below subtree bound")
				}
				if hi != nil && value.CompareKeys(k, hi) >= 0 {
					return fmt.Errorf("btree: leaf key above subtree bound")
				}
				if prev != nil && value.CompareKeys(prev, k) >= 0 {
					return fmt.Errorf("btree: leaf chain out of order")
				}
				prev = k
				count++
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: interior children/keys mismatch")
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			if err := walk(c, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d entries found", t.size, count)
	}
	return nil
}

// DumpedNode is the serializable form of one node, produced by Dump and
// consumed by Load. Children are indices into the dumped node list.
type DumpedNode struct {
	Leaf     bool
	Keys     []value.Key
	Payloads []value.Row // leaf only, parallel to Keys
	Children []int       // interior only, len(Keys)+1
}

// Dump flattens the tree into its exact structural form, nodes in
// preorder with the root at index 0. Because deletes never rebalance,
// the shape of a tree is history-dependent — Height and LeafCount feed
// optimizer cost estimates — so hibernation must round-trip structure
// exactly, not just the entry set. Load(Dump()) reproduces the tree
// node for node.
func (t *Tree) Dump() []DumpedNode {
	var out []DumpedNode
	var walk func(n *node) int
	walk = func(n *node) int {
		idx := len(out)
		out = append(out, DumpedNode{Leaf: n.leaf, Keys: n.keys, Payloads: n.payloads})
		if !n.leaf {
			children := make([]int, len(n.children))
			for i, c := range n.children {
				children[i] = walk(c)
			}
			out[idx].Children = children
		}
		return idx
	}
	walk(t.root)
	return out
}

// Load reconstructs a tree from Dump output, validating the structural
// shape (index ranges, single-use children, arity) and relinking the
// leaf chain in left-to-right order. It does not verify key ordering;
// callers decoding untrusted bytes should follow with CheckInvariants.
func Load(order int, nodes []DumpedNode) (*Tree, error) {
	if order < 4 {
		order = 4
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("btree: empty dump")
	}
	built := make([]*node, len(nodes))
	used := make([]bool, len(nodes))
	for i, d := range nodes {
		if d.Leaf {
			if len(d.Payloads) != len(d.Keys) || len(d.Children) != 0 {
				return nil, fmt.Errorf("btree: malformed leaf node %d", i)
			}
		} else {
			if len(d.Children) != len(d.Keys)+1 || len(d.Payloads) != 0 {
				return nil, fmt.Errorf("btree: malformed interior node %d", i)
			}
		}
		built[i] = &node{leaf: d.Leaf, keys: d.Keys, payloads: d.Payloads}
	}
	size := 0
	var prevLeaf *node
	var link func(i int) (*node, error)
	link = func(i int) (*node, error) {
		if i < 0 || i >= len(nodes) || used[i] {
			return nil, fmt.Errorf("btree: bad child index %d", i)
		}
		used[i] = true
		n := built[i]
		if n.leaf {
			size += len(n.keys)
			if prevLeaf != nil {
				prevLeaf.next = n
			}
			prevLeaf = n
			return n, nil
		}
		n.children = make([]*node, len(nodes[i].Children))
		for j, c := range nodes[i].Children {
			child, err := link(c)
			if err != nil {
				return nil, err
			}
			n.children[j] = child
		}
		return n, nil
	}
	root, err := link(0)
	if err != nil {
		return nil, err
	}
	for i, u := range used {
		if !u {
			return nil, fmt.Errorf("btree: orphan node %d", i)
		}
	}
	return &Tree{order: order, root: root, size: size}, nil
}

// Order returns the tree's fan-out, for serialization.
func (t *Tree) Order() int { return t.order }
