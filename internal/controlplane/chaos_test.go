package controlplane

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/engine"
	"autoindex/internal/faults"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
)

// chaosCase is a single-database chaos harness: a control plane over a
// crash-prone store, engine DDL faults, and a workload driver.
type chaosCase struct {
	clock    *sim.VirtualClock
	db       *engine.Database
	mem      Store
	cfg      Config
	runner   *CrashRunner
	engIn    *faults.Injector
	crashIn  *faults.Injector
	baseline []schema.IndexDef
}

// newChaosCase builds the harness for one schedule seed. Fault and crash
// rates derive from the seed, so the 200-case property run covers
// everything from calm to hostile schedules.
func newChaosCase(t *testing.T, seed int64) *chaosCase {
	t.Helper()
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.AnalyzeEvery = 2 * time.Hour
	cfg.SnapshotEvery = time.Hour
	cfg.ValidationWindow = 3 * time.Hour
	cfg.RetryBackoff = 30 * time.Minute
	cfg.DropScanEvery = 12 * time.Hour

	db := engine.New(engine.DefaultConfig("chaosdb", engine.TierPremium, 1000+seed), clock)
	mustExec(t, db, `CREATE TABLE items (id BIGINT NOT NULL, cat BIGINT, price FLOAT, PRIMARY KEY (id))`)
	for i := 0; i < 240; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO items (id, cat, price) VALUES (%d, %d, %d.5)`, i, i%40, i))
	}
	db.RebuildAllStats()
	// A pre-existing auto-created index the workload never touches: the
	// drop scan (and a synthetic drop record) will want it gone.
	pre := schema.IndexDef{Name: "auto_ix_pre", Table: "items", KeyColumns: []string{"price"}, AutoCreated: true}
	if err := db.CreateIndex(pre, engine.IndexBuildOptions{}); err != nil {
		t.Fatal(err)
	}
	baseline := db.IndexDefs()

	rates := sim.NewRNG(seed).Child("chaos-rates")
	faultRate := 0.35 * rates.Float64()
	crashRate := 0.25 * rates.Float64()
	engIn := faults.New(seed, "engine/chaosdb", map[faults.Point]float64{
		faults.IndexBuildLogFull:     faultRate,
		faults.IndexBuildLockTimeout: faultRate,
		faults.IndexBuildAbort:       faultRate,
		faults.DropLockTimeout:       faultRate,
	})
	db.SetFaultInjector(engIn)
	crashIn := faults.New(seed, "plane", map[faults.Point]float64{
		faults.PlaneCrashBeforeSave: crashRate,
		faults.PlaneCrashAfterSave:  crashRate,
	})
	mem := NewMemStore()
	store := NewCrashStore(mem, crashIn)
	build := func() *ControlPlane {
		cp := New(cfg, clock, store, nil)
		cp.Manage(db, "srv", Settings{AutoCreate: true, AutoDrop: true})
		return cp
	}
	return &chaosCase{
		clock: clock, db: db, mem: mem, cfg: cfg,
		runner: NewCrashRunner(build(), build), engIn: engIn, crashIn: crashIn,
		baseline: baseline,
	}
}

// seedRecords injects hand-built Active records (a create and a drop), so
// every schedule exercises both actions even if analysis files nothing.
func (c *chaosCase) seedRecords() {
	now := c.clock.Now()
	c.mem.SaveRecord(&Record{
		Recommendation: core.Recommendation{
			ID: "rec-chaosdb-000900", Database: "chaosdb", Action: core.ActionCreateIndex,
			Index:     schema.IndexDef{Name: "ix_items_cat", Table: "items", KeyColumns: []string{"cat"}},
			Source:    core.SourceDTA,
			CreatedAt: now,
		},
		State: StateActive, UpdatedAt: now,
	})
	c.mem.SaveRecord(&Record{
		Recommendation: core.Recommendation{
			ID: "rec-chaosdb-000901", Database: "chaosdb", Action: core.ActionDropIndex,
			Index:     schema.IndexDef{Name: "auto_ix_pre", Table: "items", KeyColumns: []string{"price"}, AutoCreated: true},
			Source:    core.SourceDTA,
			CreatedAt: now,
		},
		State: StateActive, UpdatedAt: now,
	})
}

// run drives hours of workload + control-plane steps under injection.
func (c *chaosCase) run(t *testing.T, hours, queriesPerHour int) {
	t.Helper()
	for h := 0; h < hours; h++ {
		for q := 0; q < queriesPerHour; q++ {
			mustExec(t, c.db, fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, (h*7+q)%40))
		}
		c.clock.Advance(time.Hour)
		c.runner.Step()
	}
}

// inFlight lists records that are neither terminal nor waiting in Active.
func (c *chaosCase) inFlight() []*Record {
	return c.mem.Records(func(r *Record) bool {
		return !r.State.Terminal() && r.State != StateActive
	})
}

// drain disables injection and steps until every record settles. The
// analysis and drop-scan clocks are frozen each hour so draining resolves
// existing records without filing new ones.
func (c *chaosCase) drain(t *testing.T) {
	t.Helper()
	c.engIn.Disable()
	c.crashIn.Disable()
	for h := 0; h < 21*24 && len(c.inFlight()) > 0; h++ {
		now := c.clock.Now()
		for _, ds := range c.mem.Databases() {
			ds.LastAnalysis = now
			ds.LastDropScan = now
			c.mem.SaveDatabase(ds)
		}
		c.clock.Advance(time.Hour)
		c.runner.Step()
	}
}

// check runs the invariant checker and fails the test on any violation.
func (c *chaosCase) check(t *testing.T) {
	t.Helper()
	if left := c.inFlight(); len(left) > 0 {
		for _, r := range left {
			t.Errorf("record %s failed to settle: %s (substate %q, attempts %d)", r.ID, r.State, r.SubState, r.Attempts)
		}
	}
	targets := map[string]InvariantTarget{"chaosdb": {DB: c.db, Baseline: c.baseline}}
	for _, v := range CheckInvariants(c.mem, targets, c.cfg, c.clock.Now()) {
		t.Errorf("invariant violation: %s", v)
	}
}

// TestChaosPropertySchedules is the tentpole property test: 200 seeded
// random fault schedules — engine DDL failures and control-plane crashes
// at rates drawn per schedule — and after a drain, every terminal state
// must satisfy the invariant checker: nothing stuck, no duplicate or
// orphaned auto-indexes, reverts restore the pre-change index set.
func TestChaosPropertySchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property run is slow")
	}
	for seed := int64(0); seed < 200; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule-%03d", seed), func(t *testing.T) {
			t.Parallel()
			c := newChaosCase(t, seed)
			c.seedRecords()
			c.run(t, 30, 5)
			c.drain(t)
			c.check(t)
		})
	}
}

// TestChaosCrashesActuallyHappen guards the property test against a
// silent no-op: across the schedule space, crashes and engine faults must
// actually fire.
func TestChaosCrashesActuallyHappen(t *testing.T) {
	c := newChaosCase(t, 7) // seed 7 draws high rates
	c.seedRecords()
	c.run(t, 20, 5)
	crashes := int64(0)
	for _, n := range c.runner.Crashes {
		crashes += n
	}
	if crashes == 0 {
		t.Error("no control-plane crashes fired")
	}
	if c.engIn.TotalFired() == 0 {
		t.Error("no engine faults fired")
	}
	c.drain(t)
	c.check(t)
}

// driveRun replays a fixed workload against a fresh database and a
// control plane persisted in dir, optionally restarting the control
// plane from the journal after every step — the persist.go round-trip.
// It returns each record's terminal outcome and the final index set.
func driveRun(t *testing.T, dir string, restartEachHour bool) (map[string]RecState, []string) {
	t.Helper()
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.AnalyzeEvery = 2 * time.Hour
	cfg.SnapshotEvery = time.Hour
	cfg.ValidationWindow = 3 * time.Hour
	db := engine.New(engine.DefaultConfig("rrdb", engine.TierPremium, 4242), clock)
	mustExec(t, db, `CREATE TABLE items (id BIGINT NOT NULL, cat BIGINT, price FLOAT, PRIMARY KEY (id))`)
	for i := 0; i < 600; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO items (id, cat, price) VALUES (%d, %d, %d.5)`, i, i%60, i))
	}
	db.RebuildAllStats()

	path := filepath.Join(dir, "journal.json")
	open := func() *ControlPlane {
		fs, err := NewFileStore(path)
		if err != nil {
			t.Fatal(err)
		}
		cp := New(cfg, clock, fs, nil)
		cp.Manage(db, "srv", Settings{AutoCreate: true, AutoDrop: true})
		return cp
	}
	cp := open()
	for h := 0; h < 30; h++ {
		for q := 0; q < 10; q++ {
			mustExec(t, db, fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, (h*13+q)%60))
		}
		clock.Advance(time.Hour)
		cp.Step()
		if restartEachHour {
			// Drop the in-memory plane on the floor; the journal is the
			// only state the next incarnation gets.
			cp = open()
		}
	}
	outcomes := make(map[string]RecState)
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fs.Records(nil) {
		outcomes[r.ID] = r.State
	}
	var sigs []string
	for _, def := range db.IndexDefs() {
		sigs = append(sigs, def.Signature())
	}
	sort.Strings(sigs)
	return outcomes, sigs
}

// TestCrashRecoveryRoundTrip runs the same workload twice — once with a
// long-lived control plane, once restarting a fresh control plane from
// the persist.go journal after every single step — and asserts both
// converge to identical record outcomes and identical index sets. All
// decision state must therefore live in the persisted Store, not in
// control-plane memory.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("round-trip run is slow")
	}
	ref, refSigs := driveRun(t, t.TempDir(), false)
	got, gotSigs := driveRun(t, t.TempDir(), true)
	if len(ref) == 0 {
		t.Fatal("reference run produced no records")
	}
	for id, st := range ref {
		if got[id] != st {
			t.Errorf("record %s: reference %s, restart-per-step %s", id, st, got[id])
		}
	}
	for id := range got {
		if _, ok := ref[id]; !ok {
			t.Errorf("restart run invented record %s (%s)", id, got[id])
		}
	}
	if strings.Join(refSigs, "\n") != strings.Join(gotSigs, "\n") {
		t.Errorf("index sets diverged:\nreference:\n%s\nrestart-per-step:\n%s",
			strings.Join(refSigs, "\n"), strings.Join(gotSigs, "\n"))
	}
}

// TestRecSeqRecoveredFromStore: a restarted control plane must continue
// the record ID sequence, not reissue IDs that would silently overwrite
// persisted records.
func TestRecSeqRecoveredFromStore(t *testing.T) {
	mem := NewMemStore()
	mem.SaveRecord(&Record{Recommendation: core.Recommendation{ID: "rec-db-000017", Database: "db"}, State: StateActive})
	mem.SaveRecord(&Record{Recommendation: core.Recommendation{ID: "rec-db-000005", Database: "db"}, State: StateSuccess})
	mem.SaveRecord(&Record{Recommendation: core.Recommendation{ID: "malformed"}, State: StateError})
	if got := recoverRecSeq(mem); got != 17 {
		t.Fatalf("recoverRecSeq = %d, want 17", got)
	}
	if got := recoverRecSeq(NewMemStore()); got != 0 {
		t.Fatalf("recoverRecSeq on empty store = %d, want 0", got)
	}
}

// TestClassifyImplementErrorWrapped is the errors.Is regression test: the
// engine annotates failures with %w context (and callers may wrap again),
// and classification must see through every layer. Sentinel equality
// would send all of these to terminal Error with an incident.
func TestClassifyImplementErrorWrapped(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("create index ix_x: %w", err) }
	rewrap := func(err error) error { return fmt.Errorf("step failed: %w", wrap(err)) }
	cases := []struct {
		name string
		err  error
		want errorClass
	}{
		{"log-full wrapped", wrap(engine.ErrLogFull), errClassTransient},
		{"log-full double-wrapped", rewrap(engine.ErrLogFull), errClassTransient},
		{"lock-timeout wrapped", wrap(engine.ErrLockTimeout), errClassTransient},
		{"build-aborted wrapped", wrap(engine.ErrBuildAborted), errClassTransient},
		{"index-exists wrapped", wrap(engine.ErrIndexExists), errClassWellKnown},
		{"index-not-found double-wrapped", rewrap(engine.ErrIndexNotFound), errClassWellKnown},
		{"table-not-found wrapped", wrap(engine.ErrTableNotFound), errClassWellKnown},
		{"unknown", fmt.Errorf("disk caught fire"), errClassUnrecognized},
	}
	for _, tc := range cases {
		if got := classifyImplementError(tc.err); got != tc.want {
			t.Errorf("%s: classified %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestWrappedTransientErrorRetriesEndToEnd drives the classification
// through handleImplementError: a deeply wrapped transient failure must
// land in Retry with backoff, not terminal Error.
func TestWrappedTransientErrorRetriesEndToEnd(t *testing.T) {
	cp := New(DefaultConfig(), sim.NewClock(), NewMemStore(), nil)
	r := &Record{
		Recommendation: core.Recommendation{ID: "rec-db-000001", Database: "db", Action: core.ActionCreateIndex},
		State:          StateImplementing,
	}
	err := fmt.Errorf("outer: %w", fmt.Errorf("create index ix: log growth race: %w", engine.ErrLogFull))
	cp.handleImplementError(r, err, StateImplementing, cp.clock.Now())
	if r.State != StateRetry {
		t.Fatalf("wrapped transient error left record in %s, want Retry", r.State)
	}
	if r.RetryTarget != StateImplementing {
		t.Fatalf("RetryTarget = %s, want Implementing", r.RetryTarget)
	}
	if len(cp.store.Incidents()) != 0 {
		t.Fatal("transient error must not raise an incident")
	}
}
