package engine

import (
	"fmt"
	"testing"

	"autoindex/internal/schema"
	"autoindex/internal/sim"
)

func TestCloneIsIndependentSnapshot(t *testing.T) {
	d, _ := testDB(t)
	mustExec(t, d, `CREATE INDEX ix_clone ON orders (customer_id)`)
	c := d.Clone("copy")

	// Identical answers at fork time.
	q := `SELECT COUNT(*) FROM orders WHERE status = 'open'`
	a := mustExec(t, d, q)
	b, err := c.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0][0].I != b.Rows[0][0].I {
		t.Fatalf("clone diverges at fork: %v vs %v", a.Rows[0][0], b.Rows[0][0])
	}
	if _, ok := c.IndexDef("ix_clone"); !ok {
		t.Fatal("clone lost an index")
	}

	// Mutations do not cross.
	mustExec(t, d, `DELETE FROM orders WHERE id = 1`)
	if c.RowCount("orders") != 500 {
		t.Fatal("primary delete leaked into clone")
	}
	if _, err := c.Exec(`DELETE FROM orders WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	if d.RowCount("orders") != 499 {
		t.Fatal("clone delete leaked into primary")
	}
	if err := c.DropIndex("ix_clone", DropIndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.IndexDef("ix_clone"); !ok {
		t.Fatal("clone index drop leaked into primary")
	}

	// Clone has fresh telemetry surfaces.
	if c.QueryStore() == d.QueryStore() || c.MissingIndexDMV() == d.MissingIndexDMV() {
		t.Fatal("clone shares telemetry stores with primary")
	}
}

func TestModuleMetadataRecovery(t *testing.T) {
	d, _ := testDB(t)
	body := `SELECT id, amount FROM orders WHERE customer_id = 5 AND status = 'open' AND amount > 10`
	if err := d.RegisterModule("usp_busy_orders", body); err != nil {
		t.Fatal(err)
	}
	stmt := mustParse(t, body)
	text, ok := d.ModuleText(stmt.Fingerprint())
	if !ok || text != body {
		t.Fatalf("module lookup: %q %v", text, ok)
	}
	// Parameterised executions share the fingerprint.
	alt := mustParse(t, `SELECT id, amount FROM orders WHERE customer_id = 99 AND status = 'x' AND amount > 0`)
	if _, ok := d.ModuleText(alt.Fingerprint()); !ok {
		t.Fatal("parameterised form must resolve to the module")
	}
	if len(d.Modules()) != 1 {
		t.Fatalf("modules: %v", d.Modules())
	}
	if err := d.RegisterModule("bad", "NOT SQL"); err == nil {
		t.Fatal("unparseable module body must be rejected")
	}
}

func TestMeasurementNoiseIsSeededButVaried(t *testing.T) {
	d1, _ := testDB(t)
	// Same statement twice: logical reads identical (deterministic), CPU
	// noisy.
	a := mustExec(t, d1, `SELECT COUNT(*) FROM orders WHERE status = 'open'`)
	b := mustExec(t, d1, `SELECT COUNT(*) FROM orders WHERE status = 'open'`)
	if a.Measured.LogicalReads != b.Measured.LogicalReads {
		t.Fatalf("logical reads must be deterministic: %v vs %v",
			a.Measured.LogicalReads, b.Measured.LogicalReads)
	}
	if a.Measured.CPUMillis == b.Measured.CPUMillis {
		t.Log("CPU identical across runs (possible but unlikely with noise)")
	}
}

func TestStatsStalenessRefresh(t *testing.T) {
	d, _ := testDB(t)
	st1, ok := d.ColumnStats("orders", "customer_id")
	if !ok {
		t.Fatal("no stats")
	}
	// Grow the table by more than the refresh fraction: stats must rebuild.
	for i := 0; i < 300; i++ {
		mustExec(t, d, fmt.Sprintf(
			`INSERT INTO orders (id, customer_id, status, amount, created) VALUES (%d, %d, 'grown', 1.5, %d)`,
			10000+i, 500+i, i))
	}
	st2, ok := d.ColumnStats("orders", "customer_id")
	if !ok {
		t.Fatal("no stats after growth")
	}
	if st2.RowCount <= st1.RowCount {
		t.Fatalf("stats did not refresh: %v -> %v rows", st1.RowCount, st2.RowCount)
	}
}

func TestHeapTablesSupported(t *testing.T) {
	clock := testClock()
	d := New(DefaultConfig("heapdb", TierBasic, 3), clock)
	// No PRIMARY KEY: a heap.
	mustExec(t, d, `CREATE TABLE raw (a BIGINT, b VARCHAR, grp BIGINT)`)
	for i := 0; i < 4000; i++ {
		mustExec(t, d, fmt.Sprintf(`INSERT INTO raw (a, b, grp) VALUES (%d, 'v%d', %d)`, i, i, i%20))
	}
	d.RebuildAllStats()
	res := mustExec(t, d, `SELECT COUNT(*) FROM raw WHERE grp = 3`)
	if res.Rows[0][0].I != 200 {
		t.Fatalf("heap query: %v", res.Rows[0][0])
	}
	// Secondary index on a heap uses RID locators; a selective predicate
	// makes the seek win despite RID-lookup costs.
	if err := d.CreateIndex(schema.IndexDef{Name: "ix_raw_a", Table: "raw", KeyColumns: []string{"a"}}, IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, d, `SELECT b FROM raw WHERE a = 3`)
	if len(res.Rows) != 1 {
		t.Fatalf("heap index seek: %d rows", len(res.Rows))
	}
	if !planUses(res.Plan, "ix_raw_a") {
		t.Fatalf("heap seek plan:\n%s", res.Plan.Explain())
	}
	// Update + delete via the index-maintained path.
	mustExec(t, d, `UPDATE raw SET b = 'changed' WHERE a = 3`)
	res = mustExec(t, d, `SELECT COUNT(*) FROM raw WHERE grp = 3`)
	if res.Rows[0][0].I != 200 {
		t.Fatalf("heap update broke data: %v", res.Rows[0][0])
	}
	del := mustExec(t, d, `DELETE FROM raw WHERE grp = 3`)
	if del.RowsAffected != 200 {
		t.Fatalf("heap delete: %d", del.RowsAffected)
	}
	if d.RowCount("raw") != 3800 {
		t.Fatalf("row count after delete: %d", d.RowCount("raw"))
	}
}

func testClock() *sim.VirtualClock { return sim.NewClock() }
