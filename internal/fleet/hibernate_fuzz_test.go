package fleet

import (
	"sync"
	"testing"

	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

// fuzzShared lazily builds the one archetype every fuzz execution stamps
// its throwaway tenant from, plus a canonical valid snapshot used to
// seed the corpus. Built once: archetype construction is far too heavy
// to repeat per exec, and the archetype itself is immutable.
var fuzzShared struct {
	once sync.Once
	arch *workload.Archetype
	blob []byte
	err  error
}

func fuzzSetup(tb testing.TB) (*workload.Archetype, []byte) {
	tb.Helper()
	fuzzShared.once.Do(func() {
		p := workload.Profile{Name: "fuzzarch", Seed: 777001, Scale: 0.2, UserIndexes: true}
		arch, err := workload.NewArchetype(p, sim.NewClock())
		if err != nil {
			fuzzShared.err = err
			return
		}
		fuzzShared.arch = arch
		tn, clock, err := fuzzTenant(arch)
		if err != nil {
			fuzzShared.err = err
			return
		}
		// A mid-run snapshot, not a pristine one: replay some statements so
		// the query store, DMVs and id streams all have content to corrupt.
		tn.Run(0, 40)
		_ = clock
		tn.DB.Park()
		fuzzShared.blob = hibernateTenant(tn)
	})
	if fuzzShared.err != nil {
		tb.Fatal(fuzzShared.err)
	}
	return fuzzShared.arch, fuzzShared.blob
}

func fuzzTenant(arch *workload.Archetype) (*workload.Tenant, *sim.VirtualClock, error) {
	clock := sim.NewClock()
	tn, err := workload.NewTenantFromArchetype(arch, "fuzztenant", 777999, clock)
	return tn, clock, err
}

// FuzzHibernateDecode fuzzes the hibernation decode path: whatever bytes
// arrive — a valid snapshot, a truncated one, a bit-flipped one, or pure
// garbage — rehydrateTenant must either succeed or return an error.
// Panics, hangs and unbounded allocations are the failure modes this
// guards against: in scale mode a decode panic would take down the whole
// fleet simulator, so corruption must always surface as an error.
// Seed corpus lives in testdata/fuzz/FuzzHibernateDecode (see
// corpus_gen_test.go for how it was produced).
func FuzzHibernateDecode(f *testing.F) {
	arch, valid := fuzzSetup(f)

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:4])              // magic only
	f.Add(valid[:len(valid)/2])   // truncated body
	f.Add(valid[:len(valid)-2])   // truncated checksum
	garbage := []byte("AXSN\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff")
	f.Add(garbage)
	for _, at := range []int{5, len(valid) / 3, len(valid) - 5} {
		flipped := append([]byte(nil), valid...)
		flipped[at] ^= 0x40
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// A fresh stamped tenant per exec: a corrupt decode may leave
		// partially-applied state behind, which must never leak into the
		// next execution's starting point.
		tn, _, err := fuzzTenant(arch)
		if err != nil {
			t.Fatal(err)
		}
		if err := rehydrateTenant(tn, data); err != nil {
			return // corruption surfaced as an error: the contract held
		}
		// Decode accepted the bytes; the tenant must be usable.
		if st := tn.Run(0, 3); st.Statements == 0 {
			t.Fatalf("decode succeeded but tenant cannot replay")
		}
	})
}
