package fleet

import (
	"time"

	"autoindex/internal/controlplane"
)

// OpsHooks lets callers (the adversarial scenario generators in
// internal/scenario) intervene at deterministic points of an ops run.
// Every callback fires in a serial barrier section — no tenant worker
// is running — so hooks may mutate tenants, issue DDL, rotate template
// mixes or adjust load factors without any synchronization, and the
// run stays bit-identical at any worker count. Nil hooks are ignored.
type OpsHooks struct {
	// AfterBuild fires once before the first hour, after the initial
	// tenant set is enrolled with the control plane.
	AfterBuild func(ctx *OpsHookContext)
	// BeforeHour fires at the barrier before hour ctx.Hour's tenant work.
	BeforeHour func(ctx *OpsHookContext)
	// AfterHour fires at the barrier after hour ctx.Hour completed
	// (control-plane step and fleet growth included).
	AfterHour func(ctx *OpsHookContext)
	// StatementsFor overrides the per-tenant statement budget for one
	// hour. It must be a pure function of (hour, tenant) — it is called
	// from parallel tenant workers — and a negative return falls back to
	// OpsConfig.StatementsPerHour. Flash-crowd scenarios spike it.
	StatementsFor func(hour int, tenant string) int
}

// OpsHookContext is what a hook sees at a barrier.
type OpsHookContext struct {
	Fleet *Fleet
	// Hour is the zero-based virtual hour (-1 for AfterBuild).
	Hour int
	// Plane is the current control-plane incarnation; chaos restarts swap
	// incarnations, so hooks must not retain it across calls.
	Plane *controlplane.ControlPlane
	// Store is the run's backing record store (the unwrapped one — reads
	// through it never trip crash fault points).
	Store controlplane.Store
}

// drainInFlight advances the fleet hour by hour — with every database's
// analysis and drop scans frozen so no new recommendations spawn —
// until no record is mid-flight or maxHours is consumed. Both the
// chaos harness and fault-free invariant audits settle through it;
// survivors past the budget surface as invariant violations.
func drainInFlight(f *Fleet, mem controlplane.Store, step func(), maxHours int) int {
	inFlight := func() bool {
		return len(mem.Records(func(r *controlplane.Record) bool {
			return !r.State.Terminal() && r.State != controlplane.StateActive
		})) > 0
	}
	freeze := func(now time.Time) {
		for _, ds := range mem.Databases() {
			ds.LastAnalysis = now
			ds.LastDropScan = now
			mem.SaveDatabase(ds)
		}
	}
	hours := 0
	for ; hours < maxHours && inFlight(); hours++ {
		freeze(f.Clock.Now())
		f.Clock.Advance(time.Hour)
		f.alignClocks()
		step()
		f.alignClocks()
	}
	return hours
}
