// Package storage provides the row stores underneath tables: a heap (row
// id addressed) used when a table has no clustered index, plus page
// accounting helpers shared with B+ tree storage. The executor charges
// logical reads in pages, so both stores expose page counts derived from
// row widths and the engine's page size.
package storage

import (
	"fmt"

	"autoindex/internal/value"
)

// PageSize is the accounting page size in bytes (SQL Server uses 8KB).
const PageSize = 8192

// RowsPerPage returns how many rows of the given width fit a page (>= 1).
func RowsPerPage(rowWidth int) int {
	if rowWidth <= 0 {
		rowWidth = 8
	}
	n := PageSize / rowWidth
	if n < 1 {
		n = 1
	}
	return n
}

// PagesFor returns the number of pages needed for rows of the given width.
func PagesFor(rowCount int64, rowWidth int) int64 {
	per := int64(RowsPerPage(rowWidth))
	pages := (rowCount + per - 1) / per
	if pages < 1 {
		pages = 1
	}
	return pages
}

// RID identifies a row in a heap.
type RID int64

// Heap stores rows addressed by RID. Deleted slots are tombstoned and
// reused, approximating a real heap's page-slot behaviour.
type Heap struct {
	rows     []value.Row
	free     []RID
	live     int64
	rowWidth int
}

// NewHeap returns an empty heap for rows of the given average width.
func NewHeap(rowWidth int) *Heap {
	return &Heap{rowWidth: rowWidth}
}

// Insert stores row and returns its RID.
func (h *Heap) Insert(row value.Row) RID {
	h.live++
	if n := len(h.free); n > 0 {
		rid := h.free[n-1]
		h.free = h.free[:n-1]
		h.rows[rid] = row
		return rid
	}
	h.rows = append(h.rows, row)
	return RID(len(h.rows) - 1)
}

// Get returns the row at rid.
func (h *Heap) Get(rid RID) (value.Row, bool) {
	if rid < 0 || int(rid) >= len(h.rows) || h.rows[rid] == nil {
		return nil, false
	}
	return h.rows[rid], true
}

// Update replaces the row at rid.
func (h *Heap) Update(rid RID, row value.Row) error {
	if _, ok := h.Get(rid); !ok {
		return fmt.Errorf("storage: update of missing rid %d", rid)
	}
	h.rows[rid] = row
	return nil
}

// Delete tombstones the row at rid.
func (h *Heap) Delete(rid RID) error {
	if _, ok := h.Get(rid); !ok {
		return fmt.Errorf("storage: delete of missing rid %d", rid)
	}
	h.rows[rid] = nil
	h.free = append(h.free, rid)
	h.live--
	return nil
}

// Len returns the number of live rows.
func (h *Heap) Len() int64 { return h.live }

// Pages returns the heap's page count, counting tombstoned slots too (a
// heap does not shrink until rebuilt).
func (h *Heap) Pages() int64 {
	return PagesFor(int64(len(h.rows)), h.rowWidth)
}

// Scan calls fn for every live row in physical order, stopping early when
// fn returns false.
func (h *Heap) Scan(fn func(RID, value.Row) bool) {
	for i, r := range h.rows {
		if r == nil {
			continue
		}
		if !fn(RID(i), r) {
			return
		}
	}
}

// Dump exposes the heap's exact physical state — slot array including
// tombstones (nil rows), free-list order, and row width — for
// serialization. RIDs are slot indices, and secondary indexes store RIDs
// as row locators, so hibernation must round-trip slots and free-list
// order exactly; re-inserting live rows would renumber them.
func (h *Heap) Dump() (rows []value.Row, free []RID, rowWidth int) {
	return h.rows, h.free, h.rowWidth
}

// Restore reconstructs a heap from Dump output, validating that the free
// list matches the tombstoned slots exactly.
func Restore(rows []value.Row, free []RID, rowWidth int) (*Heap, error) {
	seen := make(map[RID]bool, len(free))
	for _, rid := range free {
		if rid < 0 || int(rid) >= len(rows) {
			return nil, fmt.Errorf("storage: free rid %d out of range", rid)
		}
		if rows[rid] != nil {
			return nil, fmt.Errorf("storage: free rid %d holds a live row", rid)
		}
		if seen[rid] {
			return nil, fmt.Errorf("storage: duplicate free rid %d", rid)
		}
		seen[rid] = true
	}
	live := int64(0)
	for i, r := range rows {
		if r != nil {
			live++
		} else if !seen[RID(i)] {
			return nil, fmt.Errorf("storage: tombstoned rid %d missing from free list", i)
		}
	}
	return &Heap{rows: rows, free: free, live: live, rowWidth: rowWidth}, nil
}
