package scenario

import (
	"time"

	"autoindex/internal/fleet"
	"autoindex/internal/querystore"
)

// Noisy-neighbor tuning: for sixty virtual hours, half the tenants
// (even slots — they share a shard with the noisy one) see every timing
// measurement inflated threefold while logical metrics stay truthful.
// §6 builds validation on logical metrics for exactly this reason; the
// run measures how much revert pressure the skew still induces, against
// a quiet twin fleet with the same seed.
const (
	neighborDatabases    = 3
	neighborDays         = 6
	neighborStmtsPerHour = 15
	neighborNoiseStart   = 48
	neighborNoiseEnd     = 108
	neighborLoadFactor   = 3.0
)

type neighborScenario struct{}

func (neighborScenario) Name() string { return "noisy-neighbor" }
func (neighborScenario) Describe() string {
	return "a co-located tenant skews shared-shard timing signals; validation must not melt down"
}

// neighborVictim marks the tenants sharing the noisy shard.
func neighborVictim(slot int) bool { return slot%2 == 0 }

// neighborHooks applies (or, for the quiet twin, only tracks) the noise
// window. The window bounds are captured so both runs measure CPU over
// identical virtual intervals.
func neighborHooks(noisy bool, from, to *time.Time) fleet.OpsHooks {
	return fleet.OpsHooks{
		BeforeHour: func(ctx *fleet.OpsHookContext) {
			switch ctx.Hour {
			case neighborNoiseStart:
				*from = ctx.Fleet.Clock.Now()
				if noisy {
					for i, tn := range ctx.Fleet.Tenants {
						if neighborVictim(i) {
							tn.DB.SetLoadFactor(neighborLoadFactor)
						}
					}
				}
			case neighborNoiseEnd:
				*to = ctx.Fleet.Clock.Now()
				if noisy {
					for i, tn := range ctx.Fleet.Tenants {
						if neighborVictim(i) {
							tn.DB.SetLoadFactor(1)
						}
					}
				}
			}
		},
	}
}

// victimCPU sums measured CPU over the noise window across victim
// tenants (query hashes are sorted, so the float sum is stable).
func victimCPU(f *fleet.Fleet, from, to time.Time) float64 {
	var total float64
	for i, tn := range f.Tenants {
		if !neighborVictim(i) {
			continue
		}
		qs := tn.DB.QueryStore()
		for _, h := range qs.QueryHashes() {
			if s, ok := qs.QueryWindowSample(h, querystore.MetricCPU, from, to); ok {
				total += s.Mean * float64(s.N)
			}
		}
	}
	return total
}

func (s neighborScenario) Run(opts Options) (*Result, error) {
	seed := deriveSeed(opts.Seed, s.Name())
	rc := func(noisy bool, from, to *time.Time) runConfig {
		return runConfig{
			databases:         neighborDatabases,
			days:              neighborDays,
			statementsPerHour: neighborStmtsPerHour,
			hooks:             neighborHooks(noisy, from, to),
		}
	}
	var noisyFrom, noisyTo time.Time
	nf, nres, err := runFleet(opts, seed, rc(true, &noisyFrom, &noisyTo))
	if err != nil {
		return nil, err
	}
	var quietFrom, quietTo time.Time
	qf, qres, err := runFleet(opts, seed, rc(false, &quietFrom, &quietTo))
	if err != nil {
		return nil, err
	}

	noisyCPU := victimCPU(nf, noisyFrom, noisyTo)
	quietCPU := victimCPU(qf, quietFrom, quietTo)
	ratio := 0.0
	if quietCPU > 0 {
		ratio = noisyCPU / quietCPU
	}

	v := newVerdict(s.Name(), opts)
	v.check("timing-skew-observed", ratio > 1.5,
		"victim CPU inflated %.2fx during the noise window", ratio)
	v.check("control-run-clean", len(qres.Violations) == 0 && qres.DrainHours < 21*24,
		"quiet twin: %d violations, drained in %dh", len(qres.Violations), qres.DrainHours)
	if !opts.Chaos {
		// Skew may cost reverts (that is the evidence below) but must
		// never corrupt operations into on-call incidents.
		v.check("no-incidents", nres.Stats.Incidents == 0,
			"%d incidents under timing skew", nres.Stats.Incidents)
	}
	auditChecks(&v, nres)
	v.evidence("cpu-skew-ratio", ratio)
	v.evidence("noisy-reverts", float64(nres.Stats.Reverts))
	v.evidence("quiet-reverts", float64(qres.Stats.Reverts))
	v.evidence("revert-inflation", float64(nres.Stats.Reverts-qres.Stats.Reverts))
	v.evidence("revert-rate", nres.Stats.RevertRate)
	v.finalize()
	return &Result{Verdict: v, Report: v.Format()}, nil
}
