package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateFuzzCorpus regenerates the committed seed corpus for
// FuzzHibernateDecode. Skipped by default — run with
//
//	GEN_FUZZ_CORPUS=1 go test -run TestGenerateFuzzCorpus ./internal/fleet
//
// after changing the snapshot format so the corpus keeps exercising the
// real envelope layout (magic, version, body length, checksum) rather
// than a stale one. Corpus entries use the `go test fuzz v1` encoding
// the fuzzer reads natively.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate the committed corpus")
	}
	_, valid := fuzzSetup(t)

	entries := map[string][]byte{
		"valid-snapshot":     valid,
		"empty":              {},
		"magic-only":         valid[:4],
		"truncated-body":     valid[:len(valid)/2],
		"truncated-checksum": valid[:len(valid)-2],
		"bad-magic":          append([]byte("NSXA"), valid[4:]...),
		"garbage-length":     []byte("AXSN\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff"),
	}
	for _, at := range []int{5, len(valid) / 3, len(valid) - 5} {
		flipped := append([]byte(nil), valid...)
		flipped[at] ^= 0x40
		entries[fmt.Sprintf("bitflip-%d", at)] = flipped
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzHibernateDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
