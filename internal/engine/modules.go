package engine

import (
	"sort"
	"strings"
	"sync"
)

// Module metadata: the paper's DTA recovers full statement text for stored
// procedures and functions "whose definition is available in system
// metadata" when Query Store stored only a fragment (§5.3.2). Applications
// register their modules; DTA consults them after the plan cache.

// moduleCatalog holds registered module definitions.
type moduleCatalog struct {
	mu sync.RWMutex
	// byHash maps statement fingerprints to full statement text.
	byHash map[uint64]string
	names  map[string]uint64
}

func newModuleCatalog() *moduleCatalog {
	return &moduleCatalog{byHash: make(map[uint64]string), names: make(map[string]uint64)}
}

// RegisterModule records a named module (stored procedure / function) body
// in system metadata. The body must be a single parseable statement; its
// fingerprint keys later lookups.
func (d *Database) RegisterModule(name, body string) error {
	stmt, err := parseStatementText(body)
	if err != nil {
		return err
	}
	d.modules.mu.Lock()
	defer d.modules.mu.Unlock()
	h := stmt.Fingerprint()
	d.modules.byHash[h] = body
	d.modules.names[strings.ToLower(name)] = h
	return nil
}

// ModuleText returns the full statement text for a query hash if a
// registered module defines it.
func (d *Database) ModuleText(queryHash uint64) (string, bool) {
	d.modules.mu.RLock()
	defer d.modules.mu.RUnlock()
	t, ok := d.modules.byHash[queryHash]
	return t, ok
}

// Modules lists registered module names, sorted.
func (d *Database) Modules() []string {
	d.modules.mu.RLock()
	defer d.modules.mu.RUnlock()
	out := make([]string, 0, len(d.modules.names))
	for n := range d.modules.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
