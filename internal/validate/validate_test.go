package validate

import (
	"testing"
	"time"

	"autoindex/internal/querystore"
	"autoindex/internal/sim"
)

const (
	ixName = "ix_test"
	window = 6 * time.Hour
)

// harness builds a Query Store with scripted before/after executions.
type harness struct {
	clock    *sim.VirtualClock
	qs       *querystore.Store
	changeAt time.Time
}

func newHarness() *harness {
	clock := sim.NewClock()
	return &harness{clock: clock, qs: querystore.New(clock, time.Hour)}
}

// spec scripts one query's behaviour during a phase.
type spec struct {
	qh        uint64
	plan      uint64
	usesIndex bool
	cpu       float64
	isWrite   bool
}

// runPhase interleaves n executions of every spec across (most of) one
// validation window, so all specs land inside the same before/after side.
func (h *harness) runPhase(specs []spec, n int) {
	step := window * 8 / (10 * time.Duration(n+1))
	for i := 0; i < n; i++ {
		for _, s := range specs {
			info := querystore.PlanInfo{PlanHash: s.plan}
			if s.usesIndex {
				info.IndexesUsed = []string{ixName}
			}
			jitter := float64(i%5) * 0.02 * s.cpu
			h.qs.Record(s.qh, querystore.QueryMeta{Text: "stmt", IsWrite: s.isWrite}, info, querystore.Measurement{
				CPUMillis:      s.cpu + jitter,
				LogicalReads:   s.cpu * 2,
				DurationMillis: s.cpu * 3,
			})
		}
		h.clock.Advance(step)
	}
}

// phase records executions of a single (query, plan).
func (h *harness) phase(qh, plan uint64, usesIndex bool, cpu float64, n int, isWrite bool) {
	h.runPhase([]spec{{qh: qh, plan: plan, usesIndex: usesIndex, cpu: cpu, isWrite: isWrite}}, n)
}

func (h *harness) mark() { h.changeAt = h.clock.Now() }

func (h *harness) validate(created bool, cfg Config) Outcome {
	return Validate(h.qs, ixName, created, h.changeAt, window, cfg)
}

func TestImprovementDetected(t *testing.T) {
	h := newHarness()
	h.phase(1, 100, false, 20, 12, false) // before: plan without index
	h.mark()
	h.phase(1, 200, true, 5, 12, false) // after: new plan uses index, 4x cheaper
	out := h.validate(true, DefaultConfig())
	if out.Verdict != VerdictImproved || out.Revert {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Analyzed != 1 {
		t.Fatalf("analyzed = %d", out.Analyzed)
	}
}

func TestRegressionTriggersRevert(t *testing.T) {
	h := newHarness()
	h.phase(1, 100, false, 5, 12, false)
	h.mark()
	h.phase(1, 200, true, 20, 12, false) // 4x worse after the index
	out := h.validate(true, DefaultConfig())
	if out.Verdict != VerdictRegressed || !out.Revert {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestNoPlanChangeNoJudgement(t *testing.T) {
	h := newHarness()
	// The plan never references the index: the §6 filter excludes it even
	// though costs doubled (e.g., unrelated concurrent load).
	h.phase(1, 100, false, 5, 12, false)
	h.mark()
	h.phase(1, 100, false, 10, 12, false)
	out := h.validate(true, DefaultConfig())
	if out.Revert || out.Analyzed != 0 {
		t.Fatalf("plan-change filter failed: %+v", out)
	}
}

func TestDroppedIndexDirection(t *testing.T) {
	h := newHarness()
	// Before: plan used the (now dropped) index and was cheap.
	h.phase(1, 100, true, 5, 12, false)
	h.mark()
	// After: new plan without the index is much slower.
	h.phase(1, 200, false, 25, 12, false)
	out := h.validate(false, DefaultConfig())
	if out.Verdict != VerdictRegressed || !out.Revert {
		t.Fatalf("drop regression missed: %+v", out)
	}
}

func TestInsufficientExecutionsInconclusive(t *testing.T) {
	h := newHarness()
	h.phase(1, 100, false, 5, 2, false) // below MinExecutions
	h.mark()
	h.phase(1, 200, true, 50, 2, false)
	out := h.validate(true, DefaultConfig())
	if out.Revert {
		t.Fatalf("2 executions must be inconclusive: %+v", out)
	}
}

func TestSmallRegressionBelowRatioTolerated(t *testing.T) {
	h := newHarness()
	h.phase(1, 100, false, 10, 15, false)
	h.mark()
	h.phase(1, 200, true, 11, 15, false) // 10% worse < RegressionRatio 1.25
	out := h.validate(true, DefaultConfig())
	if out.Revert {
		t.Fatalf("small regression must be tolerated: %+v", out)
	}
}

func TestResourceShareFloor(t *testing.T) {
	h := newHarness()
	// A huge unrelated consumer dwarfs the regressed query.
	h.runPhase([]spec{
		{qh: 99, plan: 900, cpu: 10000},
		{qh: 1, plan: 100, cpu: 1},
	}, 12)
	h.mark()
	h.runPhase([]spec{
		{qh: 99, plan: 900, cpu: 10000},
		{qh: 1, plan: 200, usesIndex: true, cpu: 4}, // 4x regression, trivial share
	}, 12)
	cfg := DefaultConfig()
	cfg.MinResourceShare = 0.05
	out := h.validate(true, cfg)
	if out.Revert {
		t.Fatalf("insignificant statement must not trigger revert: %+v", out)
	}
}

func TestAggregatePolicyNetsOut(t *testing.T) {
	// Query 1 regresses 2x but query 2 improves 10x with more weight: the
	// aggregate policy keeps the index, the per-statement policy reverts.
	build := func() *harness {
		h := newHarness()
		h.runPhase([]spec{
			{qh: 1, plan: 100, cpu: 10},
			{qh: 2, plan: 300, cpu: 100},
		}, 12)
		h.mark()
		h.runPhase([]spec{
			{qh: 1, plan: 200, usesIndex: true, cpu: 20},
			{qh: 2, plan: 400, usesIndex: true, cpu: 10},
		}, 12)
		return h
	}
	agg := DefaultConfig()
	agg.Policy = PolicyAggregate
	out := build().validate(true, agg)
	if out.Revert {
		t.Fatalf("aggregate policy should keep the index: %+v", out)
	}
	per := DefaultConfig()
	per.Policy = PolicyPerStatement
	out = build().validate(true, per)
	if !out.Revert {
		t.Fatalf("per-statement policy should revert: %+v", out)
	}
}

func TestOutcomeDescribe(t *testing.T) {
	h := newHarness()
	h.phase(1, 100, false, 20, 12, false)
	h.mark()
	h.phase(1, 200, true, 5, 12, false)
	out := h.validate(true, DefaultConfig())
	if out.Describe() == "" {
		t.Fatal("describe")
	}
}
