// Package sim provides the simulation substrate shared by every component:
// a virtual clock, seeded random-number streams, and a measurement-noise
// model. The paper's service observes databases over hours and days; with a
// virtual clock those horizons elapse instantly and deterministically, which
// is what makes fleet-scale experiments reproducible in tests.
//
// # Concurrency and determinism contract
//
// Parallel fleet simulations shard tenants across worker goroutines. Two
// rules keep the results bit-identical regardless of worker count or
// scheduling order:
//
//  1. Clocks are per-tenant, never shared. Each tenant database owns an
//     isolated VirtualClock; only the coordinator that created the clocks
//     may advance or re-align them, and only at barriers when no tenant
//     worker is running. Sharing one VirtualClock between concurrently
//     simulated tenants is a bug: Sleep calls from one tenant would move
//     time under another, making timestamps depend on goroutine schedule.
//
//  2. RNG streams are per-tenant, never shared. Draws from a shared
//     stream interleave in scheduling order; per-tenant streams (see
//     TenantRNG) make each tenant's draw sequence a pure function of
//     (seed, tenantID). A single RNG value is internally mutex-guarded,
//     so sharing is memory-safe — but it is still nondeterministic under
//     concurrency, which is why the fleet harness never does it.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the time source used throughout the system. Production code in
// the paper uses wall time; here everything reads the clock through this
// interface so experiments can drive virtual time.
type Clock interface {
	// Now returns the current simulated time.
	Now() time.Time
	// Sleep advances past d. On a virtual clock this returns immediately.
	Sleep(d time.Duration)
}

// VirtualClock is a manually advanced Clock. The zero value is not usable;
// construct with NewVirtualClock.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// DefaultStart is the epoch used by experiments when the specific date does
// not matter. (The paper's production experiments ran March–June 2017.)
var DefaultStart = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

// NewClock returns a virtual clock at DefaultStart.
func NewClock() *VirtualClock { return NewVirtualClock(DefaultStart) }

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d. Negative durations are ignored.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Advance is a readable alias for Sleep in test and experiment code.
func (c *VirtualClock) Advance(d time.Duration) { c.Sleep(d) }

// Set jumps the clock to t. It panics if t is before the current time,
// since the rest of the system assumes time is monotonic.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		panic(fmt.Sprintf("sim: clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// AdvanceTo moves the clock forward to t; it is a no-op if t is not later
// than the current time. Fleet coordinators use it at barriers to re-align
// per-tenant clocks that drifted apart (e.g. online index builds advance
// only the affected tenant's clock) without risking the Set panic.
func (c *VirtualClock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// WallClock adapts the real time package to the Clock interface, for
// interactive use in the example binaries.
type WallClock struct{}

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }
