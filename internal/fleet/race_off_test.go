//go:build !race

package fleet

// raceEnabled reports whether this test binary was built with the race
// detector. Heavy scale tests shrink or skip under instrumentation:
// memory measurements are invalidated by the detector's shadow heap,
// and the 10k-tenant determinism runs would take tens of minutes while
// adding no race coverage beyond the chaos variant's.
const raceEnabled = false
