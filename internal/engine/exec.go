package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"autoindex/internal/btree"
	"autoindex/internal/costcache"
	"autoindex/internal/dmv"
	"autoindex/internal/executor"
	"autoindex/internal/optimizer"
	"autoindex/internal/querystore"
	"autoindex/internal/sqlparser"
	"autoindex/internal/storage"
	"autoindex/internal/value"
)

// Result is the outcome of executing one statement.
type Result struct {
	Rows []value.Row
	// Columns names the output columns for statements that return rows
	// (nil for DDL/DML) — the wire front end encodes resultset metadata
	// from it. Aggregate columns carry their rendered SQL text.
	Columns  []string
	Plan     *optimizer.Plan
	Measured querystore.Measurement
	// RowsAffected counts modified rows for writes.
	RowsAffected int64
}

// ExecOptions modulates statement execution. The zero value is the
// simulator's behaviour.
type ExecOptions struct {
	// LiveCapture marks the execution as captured from a real client
	// session; Query Store tracks the split so tuning can report whether
	// a recommendation was driven by live or simulated workload.
	LiveCapture bool
}

// parseStatementText parses a statement (exposed for module registration).
func parseStatementText(sql string) (sqlparser.Statement, error) {
	return sqlparser.Parse(sql)
}

// Exec parses and executes one SQL statement.
func (d *Database) Exec(sql string) (*Result, error) {
	return d.ExecWith(sql, ExecOptions{})
}

// ExecWith parses and executes one SQL statement with options.
func (d *Database) ExecWith(sql string, opts ExecOptions) (*Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return d.ExecStmtWith(stmt, opts)
}

// ExecStmt executes a parsed statement: DDL is routed to the DDL engine,
// DML/queries are optimized (populating the MI DMVs), executed with true
// cost metering, and recorded into Query Store.
func (d *Database) ExecStmt(stmt sqlparser.Statement) (*Result, error) {
	return d.ExecStmtWith(stmt, ExecOptions{})
}

// ExecStmtWith is ExecStmt with options.
func (d *Database) ExecStmtWith(stmt sqlparser.Statement, opts ExecOptions) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.CreateTableStmt:
		return &Result{}, d.CreateTable(s.Table)
	case *sqlparser.CreateIndexStmt:
		return &Result{}, d.CreateIndex(s.Index, IndexBuildOptions{Online: s.Online})
	case *sqlparser.DropIndexStmt:
		return &Result{}, d.DropIndex(s.Name, DropIndexOptions{})
	}

	reg := d.Metrics()
	opt := &optimizer.Optimizer{Cat: d, MI: &miAdapter{d}, Reg: reg}
	plan, err := opt.Plan(stmt)
	if err != nil {
		return nil, err
	}

	// Convoy accounting: a queued normal-priority exclusive lock blocks
	// this statement's shared schema lock (§8.3).
	blockedWait := time.Duration(0)
	for _, tbl := range planTables(plan) {
		if d.locks.SharedBlocked(tbl) {
			d.mu.Lock()
			d.convoyBlocked++
			d.mu.Unlock()
			blockedWait += 50 * time.Millisecond
		}
	}

	meter := &executor.Meter{}
	d.mu.Lock()
	res, err := d.run(plan, stmt, meter)
	d.execCount++
	dataChanged := err == nil && res.RowsAffected > 0
	if dataChanged {
		d.dataVersion++
	}
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if dataChanged {
		// Row counts feed plan costs directly (before any stats refresh),
		// so cached what-if pricings are stale the moment data moves.
		d.costCache.Invalidate(costcache.DataChange)
	}
	res.Plan = plan
	res.Measured = d.measure(meter, blockedWait)
	d.record(stmt, plan, res.Measured, opts.LiveCapture)
	reg.Counter(descStatements).Inc()
	// Estimated-vs-measured calibration: this is the only layer that
	// sees both the optimizer's cost estimate and the metered execution
	// it produced. Rounded percent keeps the histogram integer-valued
	// (the determinism contract).
	if m := res.Measured.CPUMillis; m > 0 {
		errPct := math.Abs(plan.EstCost-m) / m * 100
		reg.Histogram(optimizer.DescEstErrorAbsPct).Observe(int64(math.Round(errPct)))
	}
	return res, nil
}

func planTables(p *optimizer.Plan) []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(n *optimizer.Node)
	walk = func(n *optimizer.Node) {
		if n.Table != "" && !seen[strings.ToLower(n.Table)] {
			seen[strings.ToLower(n.Table)] = true
			out = append(out, n.Table)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}

// measure converts metered units into the execution metrics Query Store
// tracks. CPU time and duration carry multiplicative noise (concurrency,
// temporal effects); logical reads are deterministic, which is exactly why
// the validator prefers logical metrics (§6).
func (d *Database) measure(m *executor.Meter, blocked time.Duration) querystore.Measurement {
	// Page writes (index maintenance, base-row writes) consume real CPU;
	// reads a little. This is what makes over-indexing a write-hot table
	// measurably regress write statements — the dominant MI revert cause
	// in §8.1.
	// A noisy co-tenant (SetLoadFactor) inflates the timing metrics but
	// never the logical reads — the skew §6 says validation must survive.
	lf := d.LoadFactor()
	cpuMs := d.noise.Apply(m.CPUUnits+0.02*m.PagesRead+0.25*m.PagesWritten) * lf
	reads := m.PagesRead + m.PagesWritten
	durMs := d.noise.Apply(cpuMs/d.cfg.Tier.CPUCores()+reads*0.05)*lf + float64(blocked.Milliseconds())
	return querystore.Measurement{
		CPUMillis:      cpuMs,
		LogicalReads:   reads,
		DurationMillis: durMs,
	}
}

// record writes the execution into Query Store and the plan cache. The
// query hash comes from the plan (computed once per optimization) so
// ingestion, the MI DMVs, and the plan-cost cache all share one canonical
// fingerprint.
func (d *Database) record(stmt sqlparser.Statement, plan *optimizer.Plan, m querystore.Measurement, live bool) {
	text := stmt.SQL()
	qhash := plan.QueryHash
	d.mu.Lock()
	d.planTxt[qhash] = text
	d.mu.Unlock()
	truncated := false
	if d.cfg.TruncateTextOver > 0 && len(text) > d.cfg.TruncateTextOver {
		text = text[:d.cfg.TruncateTextOver]
		truncated = true
	}
	isWrite := sqlparser.IsWrite(stmt)
	d.qs.Record(qhash, querystore.QueryMeta{
		Text:               text,
		Truncated:          truncated,
		IsWrite:            isWrite,
		HasWritePredicates: isWrite && len(sqlparser.WritePredicates(stmt)) > 0,
		Live:               live,
	}, querystore.PlanInfo{
		PlanHash:    plan.PlanHash,
		IndexesUsed: append([]string(nil), plan.IndexesUsed...),
	}, m)
}

// PlanCacheText returns the full statement text for a query hash, if the
// plan cache still holds it — DTA's fallback when Query Store stored a
// truncated fragment (§5.3.2).
func (d *Database) PlanCacheText(queryHash uint64) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.planTxt[queryHash]
	return t, ok
}

// miAdapter feeds optimizer MI emissions into the DMV store.
type miAdapter struct{ d *Database }

// ObserveMissingIndex implements optimizer.MIObserver.
func (a *miAdapter) ObserveMissingIndex(c dmv.Candidate, queryHash uint64, estCost, improvementPct float64) {
	a.d.miDMV.Observe(c, queryHash, estCost, improvementPct, a.d.clock.Now())
}

// run executes the plan under d.mu.
func (d *Database) run(plan *optimizer.Plan, stmt sqlparser.Statement, meter *executor.Meter) (*Result, error) {
	switch plan.Root.Kind {
	case optimizer.KindInsert:
		switch s := stmt.(type) {
		case *sqlparser.InsertStmt:
			n, err := d.execInsert(s, meter)
			return &Result{RowsAffected: n}, err
		case *sqlparser.BulkInsertStmt:
			n, err := d.execBulkInsert(s, meter)
			return &Result{RowsAffected: n}, err
		}
		return nil, fmt.Errorf("engine: insert plan for %T", stmt)
	case optimizer.KindUpdate:
		s := stmt.(*sqlparser.UpdateStmt)
		n, err := d.execUpdate(plan.Root, s, meter)
		return &Result{RowsAffected: n}, err
	case optimizer.KindDelete:
		s := stmt.(*sqlparser.DeleteStmt)
		n, err := d.execDelete(plan.Root, s, meter)
		return &Result{RowsAffected: n}, err
	default:
		src, lay, err := d.compile(plan.Root, meter)
		if err != nil {
			return nil, err
		}
		rows := executor.Drain(src)
		cols := make([]string, 0, len(lay.cols))
		for _, c := range lay.cols {
			if c.name == ridColName {
				continue
			}
			cols = append(cols, c.name)
		}
		return &Result{Rows: rows, Columns: cols}, nil
	}
}

// ---- layouts ----

type layoutCol struct{ alias, name string }

type layout struct{ cols []layoutCol }

func (l *layout) find(alias, name string) int {
	alias = strings.ToLower(alias)
	name = strings.ToLower(name)
	if alias != "" {
		for i, c := range l.cols {
			if c.alias == alias && c.name == name {
				return i
			}
		}
	}
	for i, c := range l.cols {
		if c.name == name {
			return i
		}
	}
	return -1
}

func concatLayouts(a, b *layout) *layout {
	out := &layout{cols: make([]layoutCol, 0, len(a.cols)+len(b.cols))}
	out.cols = append(out.cols, a.cols...)
	out.cols = append(out.cols, b.cols...)
	return out
}

const ridColName = "__rid"

// tableLayout is the full-row layout for an access node, with a hidden RID
// column for heap tables so writes can locate rows.
func (d *Database) tableLayout(t *tableData, alias string) *layout {
	l := &layout{}
	a := strings.ToLower(alias)
	for _, c := range t.def.Columns {
		l.cols = append(l.cols, layoutCol{alias: a, name: strings.ToLower(c.Name)})
	}
	if t.heap != nil {
		l.cols = append(l.cols, layoutCol{alias: a, name: ridColName})
	}
	return l
}

// ---- predicate compilation ----

func compilePreds(preds []sqlparser.Predicate, lay *layout) (func(value.Row) bool, error) {
	type cp struct {
		idx int
		op  sqlparser.CompareOp
		val value.Value
	}
	comps := make([]cp, 0, len(preds))
	for _, p := range preds {
		idx := lay.find(p.Col.Table, p.Col.Column)
		if idx < 0 {
			return nil, fmt.Errorf("engine: predicate column %s not in row layout", p.Col)
		}
		comps = append(comps, cp{idx: idx, op: p.Op, val: p.Val})
	}
	return func(r value.Row) bool {
		for _, c := range comps {
			v := r[c.idx]
			if v.IsNull() || c.val.IsNull() {
				return false
			}
			cmp := value.Compare(v, c.val)
			ok := false
			switch c.op {
			case sqlparser.OpEQ:
				ok = cmp == 0
			case sqlparser.OpNE:
				ok = cmp != 0
			case sqlparser.OpLT:
				ok = cmp < 0
			case sqlparser.OpLE:
				ok = cmp <= 0
			case sqlparser.OpGT:
				ok = cmp > 0
			case sqlparser.OpGE:
				ok = cmp >= 0
			}
			if !ok {
				return false
			}
		}
		return true
	}, nil
}

// ---- access sources ----

// heapScanSource scans a heap, charging pages incrementally.
type heapScanSource struct {
	rows       []value.Row
	meter      *executor.Meter
	perRowPage float64
	charged    bool
	i          int
}

func (s *heapScanSource) Next() (value.Row, bool) {
	if !s.charged {
		s.meter.ChargePages(1)
		s.charged = true
	}
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	s.meter.ChargePages(s.perRowPage)
	s.meter.ChargeRows(1)
	return r, true
}

// compileAccess builds the source for a base access node. It returns the
// rows with the node's output layout.
func (d *Database) compileAccess(n *optimizer.Node, meter *executor.Meter) (executor.Source, *layout, error) {
	t, ok := d.tables[strings.ToLower(n.Table)]
	if !ok {
		return nil, nil, fmt.Errorf("engine: unknown table %q", n.Table)
	}
	switch n.Kind {
	case optimizer.KindSeqScan:
		return d.compileSeqScan(n, t, meter)
	case optimizer.KindIndexScan, optimizer.KindIndexSeek:
		return d.compileIndexAccess(n, t, meter)
	default:
		return nil, nil, fmt.Errorf("engine: %v is not an access node", n.Kind)
	}
}

func (d *Database) compileSeqScan(n *optimizer.Node, t *tableData, meter *executor.Meter) (executor.Source, *layout, error) {
	lay := d.tableLayout(t, n.Alias)
	var rows []value.Row
	if t.heap != nil {
		t.heap.Scan(func(rid storage.RID, r value.Row) bool {
			row := make(value.Row, 0, len(r)+1)
			row = append(row, r...)
			row = append(row, value.NewInt(int64(rid)))
			rows = append(rows, row)
			return true
		})
	} else {
		t.clustered.Ascend(func(e btree.Entry) bool {
			rows = append(rows, e.Payload)
			return true
		})
		d.usage.RecordScan(optimizer.ClusteredIndexName(t.def.Name), t.def.Name, d.clock.Now())
	}
	perRow := 1.0 / float64(storage.RowsPerPage(t.def.RowWidth()))
	var src executor.Source = &heapScanSource{rows: rows, meter: meter, perRowPage: perRow}
	if len(n.Residual) > 0 {
		pred, err := compilePreds(n.Residual, lay)
		if err != nil {
			return nil, nil, err
		}
		src = &executor.Filter{Child: src, Pred: pred, Meter: meter}
	}
	return src, lay, nil
}

// indexEntrySource iterates a B+ tree range, charging height once and leaf
// pages incrementally.
type indexEntrySource struct {
	it         *btree.Iterator
	meter      *executor.Meter
	perRowPage float64
	height     float64
	charged    bool
	// prefix is the equality prefix entries must match; scanning stops at
	// the first mismatch.
	prefix value.Key
	// stop, when non-nil, aborts the scan when an entry fails it.
	stop func(k value.Key) bool
}

func (s *indexEntrySource) Next() (btree.Entry, bool) {
	if !s.charged {
		s.meter.ChargePages(s.height)
		s.charged = true
	}
	for {
		e, ok := s.it.Next()
		if !ok {
			return btree.Entry{}, false
		}
		s.meter.ChargePages(s.perRowPage)
		s.meter.ChargeRows(1)
		if len(s.prefix) > 0 {
			if len(e.Key) < len(s.prefix) {
				return btree.Entry{}, false
			}
			for i, pv := range s.prefix {
				if value.Compare(e.Key[i], pv) != 0 {
					return btree.Entry{}, false
				}
			}
		}
		if s.stop != nil && !s.stop(e.Key) {
			return btree.Entry{}, false
		}
		return e, true
	}
}

func (d *Database) compileIndexAccess(n *optimizer.Node, t *tableData, meter *executor.Meter) (executor.Source, *layout, error) {
	// The clustered index appears in NL-join inner plans under its
	// synthetic name.
	if strings.EqualFold(n.Index, optimizer.ClusteredIndexName(t.def.Name)) {
		return d.compileClusteredSeek(n, t, meter)
	}
	ix, ok := d.indexes[strings.ToLower(n.Index)]
	if !ok {
		return nil, nil, fmt.Errorf("engine: unknown index %q", n.Index)
	}
	entries := treeEntrySource(n, ix.tree, meter)
	now := d.clock.Now()
	if n.Kind == optimizer.KindIndexScan {
		d.usage.RecordScan(ix.def.Name, t.def.Name, now)
	} else {
		d.usage.RecordSeek(ix.def.Name, t.def.Name, now)
	}

	if n.Lookup {
		// Fetch the base row through the locator.
		lay := d.tableLayout(t, n.Alias)
		var out executor.Source = &lookupSource{d: d, t: t, ix: ix, entries: entries, meter: meter}
		out, err := strictRangeFilter(n, lay, out, meter)
		if err != nil {
			return nil, nil, err
		}
		if len(n.Residual) > 0 {
			pred, err := compilePreds(n.Residual, lay)
			if err != nil {
				return nil, nil, err
			}
			out = &executor.Filter{Child: out, Pred: pred, Meter: meter}
		}
		return out, lay, nil
	}

	// Covering: output key + included columns + the locator (the clustered
	// key or heap RID every leaf entry carries).
	lay := &layout{}
	a := strings.ToLower(n.Alias)
	for _, c := range ix.def.KeyColumns {
		lay.cols = append(lay.cols, layoutCol{alias: a, name: strings.ToLower(c)})
	}
	for _, c := range ix.def.IncludedColumns {
		lay.cols = append(lay.cols, layoutCol{alias: a, name: strings.ToLower(c)})
	}
	if t.clustered != nil {
		for _, pk := range t.def.PrimaryKey {
			lay.cols = append(lay.cols, layoutCol{alias: a, name: strings.ToLower(pk)})
		}
	} else {
		lay.cols = append(lay.cols, layoutCol{alias: a, name: ridColName})
	}
	nk := len(ix.def.KeyColumns)
	var out executor.Source = &entryRowSource{entries: entries, render: func(e btree.Entry) value.Row {
		row := make(value.Row, 0, nk+len(e.Payload))
		row = append(row, e.Key[:nk]...)
		row = append(row, e.Payload...) // includes + locator
		return row
	}}
	out, err := strictRangeFilter(n, lay, out, meter)
	if err != nil {
		return nil, nil, err
	}
	if len(n.Residual) > 0 {
		pred, err := compilePreds(n.Residual, lay)
		if err != nil {
			return nil, nil, err
		}
		out = &executor.Filter{Child: out, Pred: pred, Meter: meter}
	}
	return out, lay, nil
}

// treeEntrySource builds the bounded range iterator for a seek/scan node
// over any B+ tree (secondary index or clustered index). Strict (< / >)
// bounds are widened to inclusive at the tree level — entries equal to a
// strict bound are removed by strictRangeFilter afterwards, matching how a
// storage engine seeks to the boundary and filters.
func treeEntrySource(n *optimizer.Node, tree *btree.Tree, meter *executor.Meter) *indexEntrySource {
	leaves := float64(tree.LeafCount())
	entries := float64(tree.Len())
	perRow := 0.0
	if entries > 0 {
		perRow = leaves / entries
	}
	src := &indexEntrySource{meter: meter, perRowPage: perRow, height: float64(tree.Height())}
	if n.Kind == optimizer.KindIndexScan {
		src.it = tree.Seek(nil, true, nil, true)
		src.height = 0 // full scan pays leaf pages, not a root-to-leaf probe
		return src
	}
	// Seek: equality prefix + optional range bounds on the next column.
	prefix := make(value.Key, 0, len(n.SeekEq))
	for _, p := range n.SeekEq {
		prefix = append(prefix, p.Val)
	}
	src.prefix = prefix
	lo := append(value.Key{}, prefix...)
	rangeIdx := len(prefix)
	var hiVal *value.Value
	var hiIncl bool
	for _, p := range n.SeekRange {
		v := p.Val
		switch p.Op {
		case sqlparser.OpGT, sqlparser.OpGE:
			if len(lo) == rangeIdx {
				lo = append(lo, v)
			}
		case sqlparser.OpLT:
			hiVal, hiIncl = &v, false
		case sqlparser.OpLE:
			hiVal, hiIncl = &v, true
		}
	}
	if hiVal != nil {
		hv := *hiVal
		incl := hiIncl
		src.stop = func(k value.Key) bool {
			if len(k) <= rangeIdx {
				return true
			}
			c := value.Compare(k[rangeIdx], hv)
			return c < 0 || (c == 0 && incl)
		}
	}
	var seekLo value.Key
	if len(lo) > 0 {
		seekLo = lo
	}
	src.it = tree.Seek(seekLo, true, nil, true)
	return src
}

// strictRangeFilter removes rows equal to a strict lower bound that the
// tree seek could not exclude.
func strictRangeFilter(n *optimizer.Node, lay *layout, src executor.Source, meter *executor.Meter) (executor.Source, error) {
	var strict []sqlparser.Predicate
	for _, p := range n.SeekRange {
		if p.Op == sqlparser.OpGT || p.Op == sqlparser.OpLT {
			strict = append(strict, p)
		}
	}
	if len(strict) == 0 {
		return src, nil
	}
	pred, err := compilePreds(strict, lay)
	if err != nil {
		return nil, err
	}
	return &executor.Filter{Child: src, Pred: pred, Meter: meter}, nil
}

// entryRowSource adapts index entries to rows.
type entryRowSource struct {
	entries *indexEntrySource
	render  func(btree.Entry) value.Row
}

func (s *entryRowSource) Next() (value.Row, bool) {
	e, ok := s.entries.Next()
	if !ok {
		return nil, false
	}
	return s.render(e), true
}

// lookupSource fetches base rows for non-covering index entries, charging
// random page accesses — the cost that makes lookup-heavy seeks lose to
// scans when cardinality was underestimated.
type lookupSource struct {
	d       *Database
	t       *tableData
	ix      *indexData
	entries *indexEntrySource
	meter   *executor.Meter
}

func (s *lookupSource) Next() (value.Row, bool) {
	for {
		e, ok := s.entries.Next()
		if !ok {
			return nil, false
		}
		loc := e.Payload[len(s.ix.inclOrds):]
		row, found := s.d.fetchByLocator(s.t, value.Key(loc), s.meter)
		if !found {
			continue
		}
		return row, true
	}
}

// fetchByLocator returns the base row (in tableLayout shape) for a locator.
func (d *Database) fetchByLocator(t *tableData, loc value.Key, meter *executor.Meter) (value.Row, bool) {
	if t.clustered != nil {
		meter.ChargePages(float64(t.clustered.Height()) * optimizer.RandomPageFactor)
		d.usage.RecordLookup(optimizer.ClusteredIndexName(t.def.Name), t.def.Name, d.clock.Now())
		row, ok := t.clustered.Get(loc)
		return row, ok
	}
	meter.ChargePages(1 * optimizer.RandomPageFactor)
	rid := storage.RID(loc[0].I)
	base, ok := t.heap.Get(rid)
	if !ok {
		return nil, false
	}
	row := make(value.Row, 0, len(base)+1)
	row = append(row, base...)
	row = append(row, value.NewInt(int64(rid)))
	return row, true
}

// compileClusteredSeek seeks the clustered index by a primary-key prefix.
func (d *Database) compileClusteredSeek(n *optimizer.Node, t *tableData, meter *executor.Meter) (executor.Source, *layout, error) {
	if t.clustered == nil {
		return nil, nil, fmt.Errorf("engine: table %q is a heap, no clustered index", t.def.Name)
	}
	entries := treeEntrySource(n, t.clustered, meter)
	now := d.clock.Now()
	if n.Kind == optimizer.KindIndexScan {
		d.usage.RecordScan(optimizer.ClusteredIndexName(t.def.Name), t.def.Name, now)
	} else {
		d.usage.RecordSeek(optimizer.ClusteredIndexName(t.def.Name), t.def.Name, now)
	}
	lay := d.tableLayout(t, n.Alias)
	var out executor.Source = &entryRowSource{entries: entries, render: func(e btree.Entry) value.Row {
		return e.Payload
	}}
	out, err := strictRangeFilter(n, lay, out, meter)
	if err != nil {
		return nil, nil, err
	}
	if len(n.Residual) > 0 {
		pred, err := compilePreds(n.Residual, lay)
		if err != nil {
			return nil, nil, err
		}
		out = &executor.Filter{Child: out, Pred: pred, Meter: meter}
	}
	return out, lay, nil
}

// Explain plans a statement without executing it and renders the plan with
// estimates — the EXPLAIN surface used by the recommendation details UI
// and debugging.
func (d *Database) Explain(sql string) (string, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return "", err
	}
	opt := &optimizer.Optimizer{Cat: d, Reg: d.Metrics()}
	plan, err := opt.Plan(stmt)
	if err != nil {
		return "", err
	}
	return plan.Explain(), nil
}
