package schema

import (
	"strings"
	"testing"

	"autoindex/internal/value"
)

func sampleTable() *Table {
	return &Table{
		Name: "orders",
		Columns: []Column{
			{Name: "id", Kind: value.Int},
			{Name: "customer_id", Kind: value.Int},
			{Name: "status", Kind: value.String},
			{Name: "amount", Kind: value.Float},
		},
		PrimaryKey: []string{"id"},
	}
}

func TestTableLookupCaseInsensitive(t *testing.T) {
	tab := sampleTable()
	if tab.ColumnIndex("CUSTOMER_ID") != 1 {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := tab.Column("nope"); ok {
		t.Fatal("found missing column")
	}
	if tab.RowWidth() <= 0 {
		t.Fatal("row width")
	}
}

func TestTableValidate(t *testing.T) {
	tab := sampleTable()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := sampleTable()
	dup.Columns = append(dup.Columns, Column{Name: "ID", Kind: value.Int})
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate column must fail")
	}
	badPK := sampleTable()
	badPK.PrimaryKey = []string{"ghost"}
	if err := badPK.Validate(); err == nil {
		t.Fatal("bad PK must fail")
	}
	if err := (&Table{Name: "x"}).Validate(); err == nil {
		t.Fatal("no columns must fail")
	}
}

func TestIndexDefBasics(t *testing.T) {
	def := IndexDef{
		Name: "ix", Table: "orders",
		KeyColumns:      []string{"customer_id"},
		IncludedColumns: []string{"amount"},
	}
	if !def.HasColumn("AMOUNT") || def.HasColumn("status") {
		t.Fatal("HasColumn")
	}
	if !def.Covers([]string{"customer_id", "amount"}) {
		t.Fatal("covers")
	}
	if def.Covers([]string{"status"}) {
		t.Fatal("covers too much")
	}
	ddl := def.String()
	if !strings.Contains(ddl, "INCLUDE (amount)") {
		t.Fatalf("ddl: %s", ddl)
	}
	if err := def.Validate(sampleTable()); err != nil {
		t.Fatal(err)
	}
}

func TestIndexDefValidateErrors(t *testing.T) {
	tab := sampleTable()
	cases := []IndexDef{
		{Name: "", Table: "orders", KeyColumns: []string{"id"}},
		{Name: "ix", Table: "orders"},
		{Name: "ix", Table: "orders", KeyColumns: []string{"ghost"}},
		{Name: "ix", Table: "orders", KeyColumns: []string{"id", "id"}},
		{Name: "ix", Table: "orders", KeyColumns: []string{"id"}, IncludedColumns: []string{"id"}},
	}
	for i, def := range cases {
		if err := def.Validate(tab); err == nil {
			t.Errorf("case %d should fail: %+v", i, def)
		}
	}
}

func TestKeyPrefixAndSameKey(t *testing.T) {
	a := IndexDef{Table: "t", KeyColumns: []string{"a"}}
	ab := IndexDef{Table: "t", KeyColumns: []string{"a", "b"}}
	ba := IndexDef{Table: "t", KeyColumns: []string{"b", "a"}}
	if !a.KeyPrefixOf(ab) || ab.KeyPrefixOf(a) {
		t.Fatal("prefix")
	}
	if a.KeyPrefixOf(ba) {
		t.Fatal("(a) is not a prefix of (b,a)")
	}
	dup := IndexDef{Table: "t", KeyColumns: []string{"A"}}
	if !a.SameKey(dup) {
		t.Fatal("same key is case-insensitive")
	}
	if a.SameKey(ab) {
		t.Fatal("(a) != (a,b)")
	}
}

func TestSignatureStable(t *testing.T) {
	a := IndexDef{Table: "T", KeyColumns: []string{"A", "b"}, IncludedColumns: []string{"C"}}
	b := IndexDef{Table: "t", KeyColumns: []string{"a", "B"}, IncludedColumns: []string{"c"}}
	if a.Signature() != b.Signature() {
		t.Fatal("signatures must be case-insensitive")
	}
	c := IndexDef{Table: "t", KeyColumns: []string{"b", "a"}, IncludedColumns: []string{"c"}}
	if a.Signature() == c.Signature() {
		t.Fatal("key order matters")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := IndexDef{Table: "t", KeyColumns: []string{"a"}, IncludedColumns: []string{"b"}}
	b := a.Clone()
	b.KeyColumns[0] = "z"
	b.IncludedColumns[0] = "z"
	if a.KeyColumns[0] != "a" || a.IncludedColumns[0] != "b" {
		t.Fatal("clone aliases the original")
	}
}

func TestEstimatedSizeBytes(t *testing.T) {
	tab := sampleTable()
	narrow := IndexDef{Table: "orders", KeyColumns: []string{"customer_id"}}
	wide := IndexDef{Table: "orders", KeyColumns: []string{"customer_id"}, IncludedColumns: []string{"status", "amount"}}
	ns := narrow.EstimatedSizeBytes(tab, 10000)
	ws := wide.EstimatedSizeBytes(tab, 10000)
	if ns <= 0 || ws <= ns {
		t.Fatalf("sizes: narrow=%d wide=%d", ns, ws)
	}
	// Size scales with row count.
	if narrow.EstimatedSizeBytes(tab, 20000) <= ns {
		t.Fatal("size must grow with rows")
	}
}
