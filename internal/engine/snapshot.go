package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"autoindex/internal/btree"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/snap"
	"autoindex/internal/stats"
	"autoindex/internal/storage"
	"autoindex/internal/value"
)

// Park quiesces a resident database at a fleet hour barrier. The
// plan-cost cache is reset unconditionally — whether or not the tenant is
// then hibernated — so cache contents at every barrier are identical with
// and without hibernation pressure; see costcache.Reset for the
// determinism rationale. Lock leases self-expire well inside an hour and
// need no treatment.
func (d *Database) Park() {
	d.costCache.Reset()
}

// Row tags in snapshots: a stored row is either written inline, aliased
// into the shared catalog by stamp-order index, or absent (heap
// tombstone).
const (
	rowInline = iota
	rowShared
	rowNil
)

// EncodeTo serializes the database's full mutable state in deterministic
// order. Rows and objects physically shared with sc (the tenant's
// archetype catalog) are written as references, which is both the
// compactness and the re-aliasing half of copy-on-write hibernation; sc
// may be nil, forcing everything inline. Runtime wiring — clock, config,
// metrics registry, fault injector, stats hook, bulk sources, lock
// manager, the Query Store shell — stays resident and is not serialized.
func (d *Database) EncodeTo(w *snap.Writer, sc *SharedCatalog) {
	d.mu.RLock()
	w.Uvarint(d.rng.Pos())
	w.Uvarint(d.noise.Pos())
	w.Varint(d.dataVersion)
	w.Varint(d.execCount)
	w.Varint(d.failovers)
	w.Varint(d.schemaChanges)
	w.Varint(d.convoyBlocked)

	svKeys := make([]string, 0, len(d.statsVersion))
	for k := range d.statsVersion {
		svKeys = append(svKeys, k)
	}
	sort.Strings(svKeys)
	w.Uvarint(uint64(len(svKeys)))
	for _, k := range svKeys {
		w.String(k)
		w.Varint(d.statsVersion[k])
	}

	tKeys := make([]string, 0, len(d.tables))
	for k := range d.tables {
		tKeys = append(tKeys, k)
	}
	sort.Strings(tKeys)
	w.Uvarint(uint64(len(tKeys)))
	for _, k := range tKeys {
		t := d.tables[k]
		w.String(k)
		sharedDef := sc != nil && sc.tables[k] == t.def
		w.Bool(sharedDef)
		if !sharedDef {
			encodeTableDef(w, t.def)
		}
		w.Varint(t.rowCount)
		w.Bool(t.clustered != nil)
		if t.clustered != nil {
			encodeTree(w, t.clustered, sc, k)
		} else {
			rows, free, rowWidth := t.heap.Dump()
			w.Uvarint(uint64(rowWidth))
			w.Uvarint(uint64(len(rows)))
			for _, row := range rows {
				encodeRow(w, row, sc, k)
			}
			w.Uvarint(uint64(len(free)))
			for _, rid := range free {
				w.Varint(int64(rid))
			}
		}
	}

	ixKeys := make([]string, 0, len(d.indexes))
	for k := range d.indexes {
		ixKeys = append(ixKeys, k)
	}
	sort.Strings(ixKeys)
	w.Uvarint(uint64(len(ixKeys)))
	for _, k := range ixKeys {
		ix := d.indexes[k]
		w.String(k)
		encodeIndexDef(w, ix.def)
		w.Varint(ix.createdAt.UnixNano())
		w.Varint(ix.sizeBytes)
		// Key/include ordinals are recomputed from the definitions on
		// decode; entry keys and payloads are always tenant-private.
		encodeTree(w, ix.tree, nil, "")
	}

	stKeys := make([]string, 0, len(d.colStat))
	for k := range d.colStat {
		stKeys = append(stKeys, k)
	}
	sort.Strings(stKeys)
	w.Uvarint(uint64(len(stKeys)))
	for _, k := range stKeys {
		st := d.colStat[k]
		w.String(k)
		shared := sc != nil && sc.stats[k] == st
		w.Bool(shared)
		if !shared {
			st.EncodeTo(w)
		}
	}

	ptHashes := make([]uint64, 0, len(d.planTxt))
	for h := range d.planTxt {
		ptHashes = append(ptHashes, h)
	}
	sort.Slice(ptHashes, func(i, j int) bool { return ptHashes[i] < ptHashes[j] })
	w.Uvarint(uint64(len(ptHashes)))
	for _, h := range ptHashes {
		w.Uvarint(h)
		w.String(d.planTxt[h])
	}
	d.mu.RUnlock()

	d.qs.EncodeTo(w)
	d.miDMV.EncodeTo(w)
	d.usage.EncodeTo(w)
}

// DecodeFrom rehydrates the database from an EncodeTo snapshot, restoring
// in place: the Database object, its Query Store, DMV stores, lock
// manager and cost cache shells all stay resident, so control-plane and
// chaos-harness pointers into them remain valid. The whole snapshot is
// decoded and validated before any state is swapped in; on error the
// database is left unchanged.
func (d *Database) DecodeFrom(r *snap.Reader, sc *SharedCatalog) error {
	rngPos, err := r.Uvarint()
	if err != nil {
		return err
	}
	noisePos, err := r.Uvarint()
	if err != nil {
		return err
	}
	dataVersion, err := r.Varint()
	if err != nil {
		return err
	}
	execCount, err := r.Varint()
	if err != nil {
		return err
	}
	failovers, err := r.Varint()
	if err != nil {
		return err
	}
	schemaChanges, err := r.Varint()
	if err != nil {
		return err
	}
	convoyBlocked, err := r.Varint()
	if err != nil {
		return err
	}

	nsv, err := r.Len()
	if err != nil {
		return err
	}
	statsVersion := make(map[string]int64, nsv)
	for i := 0; i < nsv; i++ {
		k, err := r.String()
		if err != nil {
			return err
		}
		v, err := r.Varint()
		if err != nil {
			return err
		}
		if _, dup := statsVersion[k]; dup {
			return corruptState("duplicate stats version key %q", k)
		}
		statsVersion[k] = v
	}

	nt, err := r.Len()
	if err != nil {
		return err
	}
	tables := make(map[string]*tableData, nt)
	for i := 0; i < nt; i++ {
		k, err := r.String()
		if err != nil {
			return err
		}
		if _, dup := tables[k]; dup {
			return corruptState("duplicate table %q", k)
		}
		sharedDef, err := r.Bool()
		if err != nil {
			return err
		}
		var def *schema.Table
		if sharedDef {
			if sc == nil || sc.tables[k] == nil {
				return corruptState("table %q references a shared definition outside its archetype", k)
			}
			def = sc.tables[k]
		} else {
			if def, err = decodeTableDef(r); err != nil {
				return err
			}
			if err := def.Validate(); err != nil {
				return corruptState("table %q: %v", k, err)
			}
		}
		if !strings.EqualFold(def.Name, k) {
			return corruptState("table key %q names definition %q", k, def.Name)
		}
		rowCount, err := r.Varint()
		if err != nil {
			return err
		}
		clustered, err := r.Bool()
		if err != nil {
			return err
		}
		t := &tableData{def: def, rowCount: rowCount}
		if clustered {
			if len(def.PrimaryKey) == 0 {
				return corruptState("table %q is clustered but has no primary key", k)
			}
			if t.clustered, err = decodeTree(r, sc, k); err != nil {
				return err
			}
			if int64(t.clustered.Len()) != rowCount {
				return corruptState("table %q row count %d != clustered entries %d", k, rowCount, t.clustered.Len())
			}
		} else {
			rowWidth, err := r.Len()
			if err != nil {
				return err
			}
			nr, err := r.Len()
			if err != nil {
				return err
			}
			rows := make([]value.Row, nr)
			for j := 0; j < nr; j++ {
				if rows[j], err = decodeRow(r, sc, k); err != nil {
					return err
				}
			}
			nf, err := r.Len()
			if err != nil {
				return err
			}
			free := make([]storage.RID, nf)
			for j := 0; j < nf; j++ {
				rid, err := r.Varint()
				if err != nil {
					return err
				}
				free[j] = storage.RID(rid)
			}
			if t.heap, err = storage.Restore(rows, free, rowWidth); err != nil {
				return corruptState("table %q: %v", k, err)
			}
			if t.heap.Len() != rowCount {
				return corruptState("table %q row count %d != live heap rows %d", k, rowCount, t.heap.Len())
			}
		}
		tables[k] = t
	}

	nix, err := r.Len()
	if err != nil {
		return err
	}
	indexes := make(map[string]*indexData, nix)
	for i := 0; i < nix; i++ {
		k, err := r.String()
		if err != nil {
			return err
		}
		if _, dup := indexes[k]; dup {
			return corruptState("duplicate index %q", k)
		}
		def, err := decodeIndexDef(r)
		if err != nil {
			return err
		}
		if !strings.EqualFold(def.Name, k) {
			return corruptState("index key %q names definition %q", k, def.Name)
		}
		t, ok := tables[strings.ToLower(def.Table)]
		if !ok {
			return corruptState("index %q references missing table %q", k, def.Table)
		}
		if err := def.Validate(t.def); err != nil {
			return corruptState("index %q: %v", k, err)
		}
		createdNs, err := r.Varint()
		if err != nil {
			return err
		}
		sizeBytes, err := r.Varint()
		if err != nil {
			return err
		}
		ix := &indexData{
			def:       def,
			createdAt: time.Unix(0, createdNs).UTC(),
			sizeBytes: sizeBytes,
		}
		for _, c := range def.KeyColumns {
			ix.keyOrds = append(ix.keyOrds, t.def.ColumnIndex(c))
		}
		for _, c := range def.IncludedColumns {
			ix.inclOrds = append(ix.inclOrds, t.def.ColumnIndex(c))
		}
		if ix.tree, err = decodeTree(r, nil, ""); err != nil {
			return err
		}
		indexes[k] = ix
	}

	nst, err := r.Len()
	if err != nil {
		return err
	}
	colStat := make(map[string]*stats.ColumnStats, nst)
	for i := 0; i < nst; i++ {
		k, err := r.String()
		if err != nil {
			return err
		}
		if _, dup := colStat[k]; dup {
			return corruptState("duplicate statistics key %q", k)
		}
		shared, err := r.Bool()
		if err != nil {
			return err
		}
		if shared {
			st := (*stats.ColumnStats)(nil)
			if sc != nil {
				st = sc.stats[k]
			}
			if st == nil {
				return corruptState("statistics %q reference a shared histogram outside its archetype", k)
			}
			colStat[k] = st
		} else {
			st, err := stats.DecodeStats(r)
			if err != nil {
				return err
			}
			colStat[k] = st
		}
	}

	npt, err := r.Len()
	if err != nil {
		return err
	}
	planTxt := make(map[uint64]string, npt)
	for i := 0; i < npt; i++ {
		h, err := r.Uvarint()
		if err != nil {
			return err
		}
		txt, err := r.String()
		if err != nil {
			return err
		}
		if _, dup := planTxt[h]; dup {
			return corruptState("duplicate plan-cache hash %d", h)
		}
		planTxt[h] = txt
	}

	if err := d.qs.DecodeFrom(r); err != nil {
		return err
	}
	if err := d.miDMV.DecodeFrom(r); err != nil {
		return err
	}
	if err := d.usage.DecodeFrom(r); err != nil {
		return err
	}

	d.mu.Lock()
	d.rng = sim.NewRNGAt(sim.DeriveSeed(d.cfg.Seed, "engine/"+d.cfg.Name), rngPos)
	d.noise = sim.NewNoiseAt(d.rng, d.cfg.NoiseCV, noisePos)
	d.dataVersion = dataVersion
	d.execCount = execCount
	d.failovers = failovers
	d.schemaChanges = schemaChanges
	d.convoyBlocked = convoyBlocked
	d.statsVersion = statsVersion
	d.tables = tables
	d.indexes = indexes
	d.colStat = colStat
	d.planTxt = planTxt
	d.mu.Unlock()
	return nil
}

// Release drops the heavy per-tenant state after a snapshot has been
// taken, keeping the Database shell (config, clock, stores, hooks, lock
// manager, bulk sources) resident for rehydration in place. The RNG and
// noise streams are also dropped — each holds a ~5KB generator — and are
// rebuilt from (seed, position) on decode.
func (d *Database) Release() {
	d.mu.Lock()
	d.tables = nil
	d.indexes = nil
	d.colStat = nil
	d.statsVersion = nil
	d.planTxt = nil
	d.rng = nil
	d.noise = nil
	d.mu.Unlock()
	d.qs.Release()
	d.miDMV.Release()
	d.usage.Release()
	d.costCache.Reset()
}

func corruptState(format string, args ...interface{}) error {
	return fmt.Errorf("engine: %w: %s", snap.ErrCorrupt, fmt.Sprintf(format, args...))
}

func encodeTableDef(w *snap.Writer, def *schema.Table) {
	w.String(def.Name)
	w.Uvarint(uint64(len(def.Columns)))
	for _, c := range def.Columns {
		w.String(c.Name)
		w.Uvarint(uint64(c.Kind))
		w.Bool(c.Nullable)
		w.Varint(int64(c.AvgWidth))
	}
	w.Uvarint(uint64(len(def.PrimaryKey)))
	for _, pk := range def.PrimaryKey {
		w.String(pk)
	}
}

func decodeTableDef(r *snap.Reader) (*schema.Table, error) {
	def := &schema.Table{}
	var err error
	if def.Name, err = r.String(); err != nil {
		return nil, err
	}
	nc, err := r.Len()
	if err != nil {
		return nil, err
	}
	def.Columns = make([]schema.Column, nc)
	for i := range def.Columns {
		c := &def.Columns[i]
		if c.Name, err = r.String(); err != nil {
			return nil, err
		}
		kind, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if kind > uint64(value.Time) {
			return nil, corruptState("unknown column kind %d", kind)
		}
		c.Kind = value.Kind(kind)
		if c.Nullable, err = r.Bool(); err != nil {
			return nil, err
		}
		width, err := r.Varint()
		if err != nil {
			return nil, err
		}
		c.AvgWidth = int(width)
	}
	npk, err := r.Len()
	if err != nil {
		return nil, err
	}
	def.PrimaryKey = make([]string, npk)
	for i := range def.PrimaryKey {
		if def.PrimaryKey[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	return def, nil
}

func encodeIndexDef(w *snap.Writer, def schema.IndexDef) {
	w.String(def.Name)
	w.String(def.Table)
	w.Uvarint(uint64(def.Kind))
	w.Uvarint(uint64(len(def.KeyColumns)))
	for _, c := range def.KeyColumns {
		w.String(c)
	}
	w.Uvarint(uint64(len(def.IncludedColumns)))
	for _, c := range def.IncludedColumns {
		w.String(c)
	}
	w.Bool(def.Unique)
	w.Bool(def.Hypothetical)
	w.Bool(def.AutoCreated)
	w.Bool(def.Hinted)
	w.Bool(def.EnforcesConstraint)
}

func decodeIndexDef(r *snap.Reader) (schema.IndexDef, error) {
	var def schema.IndexDef
	var err error
	if def.Name, err = r.String(); err != nil {
		return def, err
	}
	if def.Table, err = r.String(); err != nil {
		return def, err
	}
	kind, err := r.Uvarint()
	if err != nil {
		return def, err
	}
	if kind > uint64(schema.Clustered) {
		return def, corruptState("unknown index kind %d", kind)
	}
	def.Kind = schema.IndexKind(kind)
	nk, err := r.Len()
	if err != nil {
		return def, err
	}
	def.KeyColumns = make([]string, nk)
	for i := range def.KeyColumns {
		if def.KeyColumns[i], err = r.String(); err != nil {
			return def, err
		}
	}
	ni, err := r.Len()
	if err != nil {
		return def, err
	}
	def.IncludedColumns = make([]string, ni)
	for i := range def.IncludedColumns {
		if def.IncludedColumns[i], err = r.String(); err != nil {
			return def, err
		}
	}
	if def.Unique, err = r.Bool(); err != nil {
		return def, err
	}
	if def.Hypothetical, err = r.Bool(); err != nil {
		return def, err
	}
	if def.AutoCreated, err = r.Bool(); err != nil {
		return def, err
	}
	if def.Hinted, err = r.Bool(); err != nil {
		return def, err
	}
	if def.EnforcesConstraint, err = r.Bool(); err != nil {
		return def, err
	}
	return def, nil
}

// encodeRow writes one stored row, aliasing it into the shared catalog
// when the slice is physically the catalog's (copy-on-write sharing means
// most base rows of most tenants hit this path, collapsing snapshot size
// and rehydrated memory alike).
func encodeRow(w *snap.Writer, row value.Row, sc *SharedCatalog, tableKey string) {
	if row == nil {
		w.Uvarint(rowNil)
		return
	}
	if ref, ok := sc.rowRefOf(row); ok && ref.table == tableKey {
		w.Uvarint(rowShared)
		w.Uvarint(uint64(ref.idx))
		return
	}
	w.Uvarint(rowInline)
	w.Row(row)
}

func decodeRow(r *snap.Reader, sc *SharedCatalog, tableKey string) (value.Row, error) {
	tag, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	switch tag {
	case rowNil:
		return nil, nil
	case rowShared:
		idx, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		var rows []value.Row
		if sc != nil {
			rows = sc.rows[tableKey]
		}
		if idx >= uint64(len(rows)) {
			return nil, corruptState("shared row %d/%d for table %q", idx, len(rows), tableKey)
		}
		return rows[idx], nil
	case rowInline:
		return r.Row()
	default:
		return nil, corruptState("unknown row tag %d", tag)
	}
}

func encodeKey(w *snap.Writer, k value.Key) {
	w.Uvarint(uint64(len(k)))
	for _, v := range k {
		w.Value(v)
	}
}

func decodeKey(r *snap.Reader) (value.Key, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	k := make(value.Key, n)
	for i := range k {
		if k[i], err = r.Value(); err != nil {
			return nil, err
		}
	}
	return k, nil
}

// encodeTree writes a B+ tree's exact node structure (deletes never
// rebalance, so shape is history-dependent and feeds optimizer costs);
// sc enables shared-row aliasing for clustered base-table payloads and is
// nil for secondary-index trees, whose entries are always tenant-private.
func encodeTree(w *snap.Writer, t *btree.Tree, sc *SharedCatalog, tableKey string) {
	nodes := t.Dump()
	w.Uvarint(uint64(t.Order()))
	w.Uvarint(uint64(len(nodes)))
	for _, n := range nodes {
		w.Bool(n.Leaf)
		w.Uvarint(uint64(len(n.Keys)))
		for _, k := range n.Keys {
			encodeKey(w, k)
		}
		if n.Leaf {
			for _, p := range n.Payloads {
				encodeRow(w, p, sc, tableKey)
			}
		} else {
			w.Uvarint(uint64(len(n.Children)))
			for _, c := range n.Children {
				w.Uvarint(uint64(c))
			}
		}
	}
}

func decodeTree(r *snap.Reader, sc *SharedCatalog, tableKey string) (*btree.Tree, error) {
	order, err := r.Len()
	if err != nil {
		return nil, err
	}
	nn, err := r.Len()
	if err != nil {
		return nil, err
	}
	nodes := make([]btree.DumpedNode, nn)
	for i := range nodes {
		n := &nodes[i]
		if n.Leaf, err = r.Bool(); err != nil {
			return nil, err
		}
		nk, err := r.Len()
		if err != nil {
			return nil, err
		}
		n.Keys = make([]value.Key, nk)
		for j := range n.Keys {
			if n.Keys[j], err = decodeKey(r); err != nil {
				return nil, err
			}
		}
		if n.Leaf {
			n.Payloads = make([]value.Row, nk)
			for j := range n.Payloads {
				if n.Payloads[j], err = decodeRow(r, sc, tableKey); err != nil {
					return nil, err
				}
			}
		} else {
			nc, err := r.Len()
			if err != nil {
				return nil, err
			}
			n.Children = make([]int, nc)
			for j := range n.Children {
				c, err := r.Uvarint()
				if err != nil {
					return nil, err
				}
				if c >= uint64(nn) {
					return nil, corruptState("tree child index %d out of range", c)
				}
				n.Children[j] = int(c)
			}
		}
	}
	t, err := btree.Load(order, nodes)
	if err != nil {
		return nil, corruptState("%v", err)
	}
	if err := t.CheckInvariants(); err != nil {
		return nil, corruptState("%v", err)
	}
	return t, nil
}
