package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCompareAnalyzer forbids identity comparison of errors — the PR 3
// bug class: when fault injection started wrapping engine sentinels
// (%w), every `err == ErrLogFull` in dta silently stopped matching and
// misclassified aborts. Flagged forms:
//
//   - `err == ErrSentinel` / `err != ErrSentinel` where one side is a
//     declared error variable (package-level sentinel); `== nil` stays
//     allowed,
//   - `switch err { case ErrSentinel: }` on an error-typed tag,
//   - `err.Error() == "..."` and strings.Contains/HasPrefix/HasSuffix/
//     EqualFold over err.Error() — string matching is even more
//     fragile than identity.
//
// The fix is errors.Is (or errors.As for typed errors).
var ErrCompareAnalyzer = &Analyzer{
	Name: "errcompare",
	Doc:  "error compared with ==/!= or matched by string instead of errors.Is/errors.As",
	Run:  runErrCompare,
}

func runErrCompare(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkErrBinary(pass, e)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, e)
			case *ast.CallExpr:
				checkErrStringMatch(pass, e)
			}
			return true
		})
	}
}

func checkErrBinary(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{e.X, e.Y} {
		if c := errorStringCall(pass, side); c != "" {
			pass.Reportf(e.Pos(), "%s compares error text; use errors.Is (wrapped errors change their string)", c)
			return
		}
	}
	if !isErrorType(pass.TypeOf(e.X)) && !isErrorType(pass.TypeOf(e.Y)) {
		return
	}
	if s := sentinelName(pass, e.X); s != "" {
		pass.Reportf(e.Pos(), "error compared with %s against sentinel %s; use errors.Is so wrapped errors still match", e.Op, s)
		return
	}
	if s := sentinelName(pass, e.Y); s != "" {
		pass.Reportf(e.Pos(), "error compared with %s against sentinel %s; use errors.Is so wrapped errors still match", e.Op, s)
	}
}

func checkErrSwitch(pass *Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !isErrorType(pass.TypeOf(s.Tag)) {
		return
	}
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if name := sentinelName(pass, expr); name != "" {
				pass.Reportf(expr.Pos(), "switch on error compares sentinel %s by identity; use if/else with errors.Is", name)
			}
		}
	}
}

// checkErrStringMatch flags strings.* substring matching over
// err.Error().
func checkErrStringMatch(pass *Pass, call *ast.CallExpr) {
	path, name, ok := pkgFunc(pass.Info, call)
	if !ok || path != "strings" {
		return
	}
	switch name {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		if inner, ok := arg.(*ast.CallExpr); ok {
			if c := errorStringCall(pass, inner); c != "" {
				pass.Reportf(call.Pos(), "strings.%s over %s matches error text; use errors.Is or a typed error", name, c)
				return
			}
		}
	}
}

// errorStringCall matches a call `x.Error()` where x is an error, and
// returns its rendering, or "".
func errorStringCall(pass *Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return ""
	}
	if !isErrorType(pass.TypeOf(sel.X)) {
		return ""
	}
	return types.ExprString(call)
}

// sentinelName reports e as a use of a declared error variable (a
// sentinel like engine.ErrLockTimeout), returning its rendering.
// nil and fresh local errors are not sentinels.
func sentinelName(pass *Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[x.Sel]
	default:
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || !isErrorType(v.Type()) {
		return ""
	}
	// Package-level error vars are sentinels; locals (err) and struct
	// fields are not.
	if v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return types.ExprString(e)
}
