// Command autoindexd runs the auto-indexing service over a simulated
// multi-tenant region and reports the service's activity: per-database
// recommendations, implementations, validations and reverts, plus the
// aggregated operational statistics.
//
// Usage:
//
//	autoindexd -databases 6 -days 8 -seed 42 -auto 0.5 -v
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"autoindex/internal/fleet"
)

func main() {
	var (
		databases = flag.Int("databases", 6, "number of tenant databases")
		days      = flag.Int("days", 8, "virtual days to run")
		seed      = flag.Int64("seed", 42, "fleet seed")
		auto      = flag.Float64("auto", 0.5, "fraction of databases with auto-implementation")
		stmtsHr   = flag.Int("stmts", 30, "statements per database per virtual hour")
		verbose   = flag.Bool("v", false, "print per-database action history")
		listen    = flag.String("listen", "", "after the run, serve the §2 REST management API on this address (e.g. :8080)")
	)
	flag.Parse()

	fl, err := fleet.Build(fleet.Spec{
		Databases:   *databases,
		MixedTiers:  true,
		Seed:        *seed,
		UserIndexes: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "autoindexd:", err)
		os.Exit(1)
	}
	cfg := fleet.DefaultOpsConfig()
	cfg.Days = *days
	cfg.StatementsPerHour = *stmtsHr
	cfg.AutoImplementFraction = *auto

	fmt.Printf("autoindexd: managing %d databases for %d virtual days (seed %d)\n\n",
		*databases, *days, *seed)
	res, err := fl.RunOps(fleet.Spec{Seed: *seed, UserIndexes: true}, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autoindexd:", err)
		os.Exit(1)
	}

	if *verbose {
		for _, tn := range fl.Tenants {
			hist := res.Plane.History(tn.DB.Name())
			active := res.Plane.ListRecommendations(tn.DB.Name())
			if len(hist) == 0 && len(active) == 0 {
				continue
			}
			fmt.Printf("%s (%s):\n", tn.DB.Name(), tn.DB.Tier())
			for _, r := range active {
				fmt.Printf("  [Active]      %s\n", r.Describe())
			}
			for _, r := range hist {
				fmt.Printf("  [%-11s] %s %s", r.State, r.Action, r.Index.Name)
				if r.Validation != nil {
					fmt.Printf(" — %s", r.Validation.Verdict)
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}

	fmt.Println("operational summary (cf. paper §8.1):")
	fmt.Println(" ", res.Stats.String())
	fmt.Printf("  queries >2x faster: %d; databases with >50%% aggregate CPU reduction: %d; steady-state databases: %d\n",
		res.QueriesTwiceFaster, res.DatabasesHalvedCPU, res.SteadyStateDatabases)
	fmt.Println("\ntelemetry counters:")
	for _, c := range res.Plane.Telemetry().Counters() {
		fmt.Println("  ", c)
	}
	if inc := res.Plane.StateStore().Incidents(); len(inc) > 0 {
		fmt.Printf("\n%d incidents for on-call review:\n", len(inc))
		for _, i := range inc {
			fmt.Printf("  [%s] %s %s: %s\n", i.At.Format(time.RFC3339), i.Database, i.Kind, i.Message)
		}
	}

	if *listen != "" {
		// The management API plus the observability surface: /metrics is
		// the full text exposition (volatile metrics included) of the
		// run's registry; /debug/pprof/* is the stock net/http/pprof
		// handler set for profiling the daemon itself.
		mux := http.NewServeMux()
		mux.Handle("/", res.Plane.HTTPHandler())
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := fl.Metrics.WriteText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("\nserving management API on %s (GET /databases, /opstats, /metrics, /debug/pprof/, ...)\n", *listen)
		if err := http.ListenAndServe(*listen, mux); err != nil {
			fmt.Fprintln(os.Stderr, "autoindexd:", err)
			os.Exit(1)
		}
	}
}
