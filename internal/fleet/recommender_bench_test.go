package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"autoindex/internal/recommend/dta"
)

// benchTuneSpec is the standard fleet scenario the recommender-latency
// benchmark and its what-if-call accounting both run against.
func benchTuneSpec(workers int) (Spec, OpsConfig) {
	spec := Spec{Databases: 4, MixedTiers: true, Seed: 20170301, UserIndexes: true, Workers: workers}
	cfg := DefaultOpsConfig()
	cfg.Days = 2
	cfg.StatementsPerHour = 10
	cfg.NewTenantEvery = 0
	cfg.AutoImplementFraction = 0
	// Warm the query stores without letting the control plane tune: the
	// benchmark times the recommender sweep itself, once per tenant.
	cfg.Plane.AnalyzeEvery = 1_000_000 * time.Hour
	return spec, cfg
}

// buildWarmFleet constructs the scenario fleet and replays its workload so
// every tenant's Query Store holds the same statements on every call.
func buildWarmFleet(b *testing.B, workers int) *Fleet {
	b.Helper()
	spec, cfg := benchTuneSpec(workers)
	f, err := Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.RunOps(Spec{Seed: spec.Seed, UserIndexes: true}, cfg); err != nil {
		b.Fatal(err)
	}
	return f
}

// tuneFleet runs one DTA pass per tenant across the worker pool and
// returns the summed optimizer what-if call count. accelerate toggles the
// whole costing acceleration stack (plan-cost cache, upper-bound pruning,
// workload compression) against the exact uncompressed baseline.
func tuneFleet(b *testing.B, f *Fleet, workers int, accelerate bool) int64 {
	b.Helper()
	calls := make([]int64, len(f.Tenants))
	errs := make([]error, len(f.Tenants))
	forEach(workers, len(f.Tenants), func(i int) {
		tn := f.Tenants[i]
		opts := dta.OptionsForTier(tn.DB.Tier())
		opts.MaxWhatIfCalls = 0 // count honestly, never clamp either arm
		if !accelerate {
			opts.DisableCostCache = true
			opts.DisablePruning = true
			opts.CompressWorkload = false
		}
		res, err := dta.Run(tn.DB, opts)
		if err != nil {
			errs[i] = err
			return
		}
		calls[i] = res.WhatIfCalls
	})
	var total int64
	for i := range f.Tenants {
		if errs[i] != nil {
			b.Fatal(errs[i])
		}
		total += calls[i]
	}
	return total
}

// BenchmarkRecommenderLatency measures a full accelerated recommender
// sweep (fleet build + workload replay + one DTA pass per tenant) at
// several worker counts, and records alongside the timings how many
// optimizer what-if calls the acceleration layer saved against the exact
// uncached, unpruned, uncompressed path. Results land in
// BENCH_recommender.json at the repo root, gated by cmd/benchdiff in CI
// exactly like BENCH_fleet.json.
func BenchmarkRecommenderLatency(b *testing.B) {
	type timing struct {
		Workers  int     `json:"workers"`
		NsPerOp  int64   `json:"ns_per_op"`
		SecPerOp float64 `json:"sec_per_op"`
	}
	workerSet := []int{1, 4, 8}
	latest := make(map[int]timing)
	for _, w := range workerSet {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(sb *testing.B) {
			start := time.Now()
			for i := 0; i < sb.N; i++ {
				f := buildWarmFleet(sb, w)
				tuneFleet(sb, f, w, true)
			}
			per := time.Since(start).Nanoseconds() / int64(sb.N)
			latest[w] = timing{Workers: w, NsPerOp: per, SecPerOp: float64(per) / 1e9}
		})
	}
	if len(latest) == 0 {
		return
	}

	// What-if call accounting, measured once on fresh identical fleets so
	// neither arm sees the other's sampled statistics or cache state.
	accel := tuneFleet(b, buildWarmFleet(b, 1), 1, true)
	uncached := tuneFleet(b, buildWarmFleet(b, 1), 1, false)
	reduction := 0.0
	if accel > 0 {
		reduction = float64(uncached) / float64(accel)
	}
	b.Logf("whatif calls: accelerated=%d uncached=%d reduction=%.2fx", accel, uncached, reduction)
	if reduction < 2 {
		b.Errorf("acceleration layer saved only %.2fx what-if calls, want >= 2x", reduction)
	}

	timings := make([]timing, 0, len(latest))
	for _, w := range workerSet {
		if t, ok := latest[w]; ok {
			timings = append(timings, t)
		}
	}
	report := map[string]any{
		"benchmark":                "BenchmarkRecommenderLatency",
		"workload":                 "Build(4 mixed-tier tenants) + RunOps(2 days, 10 stmts/hour) + one DTA pass per tenant",
		"num_cpu":                  runtime.NumCPU(),
		"gomaxprocs":               runtime.GOMAXPROCS(0),
		"whatif_calls_accelerated": accel,
		"whatif_calls_uncached":    uncached,
		"whatif_call_reduction":    reduction,
		"timings":                  timings,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_recommender.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("could not write BENCH_recommender.json: %v", err)
	}
}
