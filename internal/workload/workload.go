// Package workload generates and replays the synthetic multi-tenant
// workloads that stand in for Azure SQL Database's production diversity
// (DESIGN.md §1). Each tenant gets a randomized schema (tables, column
// kinds, data skew, correlated column pairs), a population of rows, a set
// of "user" indexes emulating prior human tuning, and a weighted mix of
// parameterized statement templates — point lookups, range scans, joins,
// group-bys, TOP-N, updates, deletes, inserts and bulk loads.
//
// Everything derives from the tenant's seed, so fleets are reproducible.
package workload

import (
	"fmt"
	"strings"

	"autoindex/internal/engine"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/value"
)

// Profile configures one tenant database.
type Profile struct {
	Name string
	Tier engine.Tier
	Seed int64
	// Scale multiplies default row counts (1.0 = test-friendly defaults).
	Scale float64
	// WriteFraction is the share of write statements in the mix; if zero a
	// tier-appropriate value is drawn.
	WriteFraction float64
	// UserIndexes controls whether the generator creates the "user tuned"
	// indexes after population (Fig 6's User baseline needs them).
	UserIndexes bool
}

// ColumnSpec describes one generated column's data distribution.
type ColumnSpec struct {
	Name     string
	Kind     value.Kind
	Distinct int
	// ZipfS > 1 skews draws; 0 means uniform.
	ZipfS float64
	// CorrelatedWith, when set, makes this column a deterministic function
	// of another column (value % CorrFactor), breaking the optimizer's
	// independence assumption.
	CorrelatedWith string
	CorrFactor     int
	// Wide marks payload columns that fatten rows (making scans expensive
	// and covering indexes valuable).
	Wide bool
}

// TableSpec describes one generated table.
type TableSpec struct {
	Name    string
	Columns []ColumnSpec
	Rows    int
	// HasPK makes the table clustered on its first column.
	HasPK bool
	// FKOf links the table's fk column to another table's PK domain.
	FKOf string
}

// Tenant is a generated database plus its workload. Tenants stamped from
// an Archetype (see NewTenantFromArchetype) share their schema templates,
// base rows, statement templates and histogram statistics copy-on-write
// with every sibling of the same archetype; self-generated tenants own
// all of it.
type Tenant struct {
	Profile   Profile
	DB        *engine.Database
	Tables    []TableSpec
	Templates []*Template
	// Archetype is the template this tenant was stamped from; nil for
	// self-generated tenants.
	Archetype *Archetype
	rng       *sim.RNG
	// longQueryProb is the chance a statement holds a long shared lock.
	longQueryProb float64
	// insertIDs tracks the last synthetic primary key handed out per
	// table by insert templates; feedNext tracks the next id of each
	// table's ongoing bulk feed. Both live on the Tenant (not in template
	// closures) so templates can be shared across archetype siblings and
	// the state survives hibernation.
	insertIDs map[string]int64
	feedNext  map[string]int64
}

// Template is one parameterized statement pattern. Templates are
// stateless and shared across archetype siblings: all per-tenant state
// (RNG, insert ids, value pools are immutable) is reached through the
// tenant passed to Gen.
type Template struct {
	Name    string
	Weight  float64
	IsWrite bool
	// Gen produces a fresh SQL string with new literals, drawing from the
	// given tenant's streams.
	Gen func(tn *Tenant) string
}

// NewTenant generates, creates and populates a tenant database.
func NewTenant(p Profile, clock sim.Clock) (*Tenant, error) {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	rng := sim.NewRNG(p.Seed).Child("workload/" + p.Name)
	cfg := engine.DefaultConfig(p.Name, p.Tier, p.Seed)
	db := engine.New(cfg, clock)
	t := &Tenant{
		Profile:       p,
		DB:            db,
		rng:           rng,
		longQueryProb: 0.002,
		insertIDs:     make(map[string]int64),
		feedNext:      make(map[string]int64),
	}
	t.generateSchema()
	if err := t.createAndPopulate(); err != nil {
		return nil, err
	}
	t.generateTemplates()
	if p.UserIndexes {
		if err := t.createUserIndexes(); err != nil {
			return nil, err
		}
	}
	db.RebuildAllStats()
	return t, nil
}

// tierRows returns a base row count for the tier.
func (t *Tenant) tierRows() int {
	r := t.rng.Child("rows")
	switch t.Profile.Tier {
	case engine.TierBasic:
		return 800 + r.Intn(1500)
	case engine.TierStandard:
		return 2000 + r.Intn(4000)
	default:
		return 5000 + r.Intn(10000)
	}
}

var stringPools = []string{"status", "kind", "region", "category", "channel", "source"}

func (t *Tenant) generateSchema() {
	r := t.rng.Child("schema")
	nTables := 2 + r.Intn(4)
	if t.Profile.Tier == engine.TierPremium {
		nTables = 3 + r.Intn(4)
	}
	for i := 0; i < nTables; i++ {
		name := fmt.Sprintf("t%d_%s", i, tableNames[r.Intn(len(tableNames))])
		rows := int(float64(t.tierRows()) * t.Profile.Scale)
		if i > 0 {
			// Secondary tables are often smaller (dimensions) or larger
			// (facts); vary it.
			rows = int(float64(rows) * (0.2 + 1.6*r.Float64()))
		}
		if rows < 50 {
			rows = 50
		}
		ts := TableSpec{Name: name, Rows: rows, HasPK: r.Float64() < 0.85}
		ts.Columns = append(ts.Columns, ColumnSpec{Name: "id", Kind: value.Int, Distinct: rows})
		nCols := 4 + r.Intn(6)
		for c := 0; c < nCols; c++ {
			col := ColumnSpec{Name: fmt.Sprintf("c%d", c)}
			switch r.Intn(5) {
			case 0, 1: // int attribute
				col.Kind = value.Int
				col.Distinct = 2 + r.Intn(rows/2+2)
				if r.Float64() < 0.5 {
					col.ZipfS = 1.1 + r.Float64()
				}
			case 2: // categorical string
				col.Kind = value.String
				col.Name = fmt.Sprintf("%s%d", stringPools[r.Intn(len(stringPools))], c)
				col.Distinct = 2 + r.Intn(40)
				if r.Float64() < 0.6 {
					col.ZipfS = 1.2 + r.Float64()
				}
			case 3: // float measure
				col.Kind = value.Float
				col.Distinct = rows
			case 4: // wide payload
				col.Kind = value.String
				col.Name = fmt.Sprintf("payload%d", c)
				col.Distinct = rows
				col.Wide = true
			}
			ts.Columns = append(ts.Columns, col)
		}
		// Correlated pair with probability 0.35: c_corr = base % k.
		if r.Float64() < 0.35 {
			var base string
			for _, c := range ts.Columns[1:] {
				if c.Kind == value.Int && !c.Wide {
					base = c.Name
					break
				}
			}
			if base != "" {
				ts.Columns = append(ts.Columns, ColumnSpec{
					Name: "corr_" + base, Kind: value.Int,
					CorrelatedWith: base, CorrFactor: 2 + r.Intn(8),
				})
			}
		}
		// Foreign key to a previous table.
		if i > 0 && r.Float64() < 0.8 {
			parent := t.Tables[r.Intn(i)]
			ts.Columns = append(ts.Columns, ColumnSpec{
				Name: "fk_" + parent.Name, Kind: value.Int,
				Distinct: parent.Rows,
				ZipfS:    1.1 + r.Float64()*0.8,
			})
			ts.FKOf = parent.Name
		}
		t.Tables = append(t.Tables, ts)
	}
}

var tableNames = []string{"orders", "events", "items", "accounts", "sessions", "invoices", "shipments", "tickets", "logs", "users"}

func (t *Tenant) createAndPopulate() error {
	r := t.rng.Child("data")
	for _, ts := range t.Tables {
		def := schema.Table{Name: ts.Name}
		for _, c := range ts.Columns {
			col := schema.Column{Name: c.Name, Kind: c.Kind, Nullable: c.Name != "id"}
			if c.Wide {
				col.AvgWidth = 120
			}
			def.Columns = append(def.Columns, col)
		}
		if ts.HasPK {
			def.PrimaryKey = []string{"id"}
		}
		if err := t.DB.CreateTable(def); err != nil {
			return err
		}
		// Populate through a bulk source (cheap, avoids parsing per row).
		rows := generateRows(ts, ts.Rows, r.Child(ts.Name))
		src := "seed_" + ts.Name
		t.DB.RegisterBulkSource(src, func(n int64) []value.Row {
			if int(n) > len(rows) {
				n = int64(len(rows))
			}
			return rows[:n]
		})
		stmt := fmt.Sprintf("BULK INSERT %s FROM DATASOURCE %s", ts.Name, src)
		parsed, err := parseBulk(stmt, int64(len(rows)))
		if err != nil {
			return err
		}
		if _, err := t.DB.ExecStmt(parsed); err != nil {
			return err
		}
		t.registerFeed(ts)
	}
	return nil
}

// registerFeed installs the ongoing bulk-feed source for one table. Feed
// rows derive from seed-keyed child streams (no positional state), so the
// only mutable state is the next id, held on the Tenant where hibernation
// can reach it.
func (t *Tenant) registerFeed(ts TableSpec) {
	feed := "feed_" + ts.Name
	spec := ts
	t.feedNext[ts.Name] = int64(ts.Rows)
	t.DB.RegisterBulkSource(feed, func(n int64) []value.Row {
		out := generateRows(spec, int(n), t.rng.Child("data").Child("feed/"+spec.Name))
		for i := range out {
			t.feedNext[spec.Name]++
			out[i][0] = value.NewInt(t.feedNext[spec.Name])
		}
		return out
	})
}

// nextInsertID advances and returns the synthetic primary key stream for
// insert templates; ids start far above seeded/bulk ranges.
func (t *Tenant) nextInsertID(table string) int64 {
	id, ok := t.insertIDs[table]
	if !ok {
		id = 1 << 40
	}
	id++
	t.insertIDs[table] = id
	return id
}

// lastInsertID returns the most recently handed-out insert id (the base
// of the range when no insert has happened yet).
func (t *Tenant) lastInsertID(table string) int64 {
	if id, ok := t.insertIDs[table]; ok {
		return id
	}
	return 1 << 40
}

// generateRows produces rows following the table's column distributions.
// It draws only from name-keyed child streams of r, never from r itself,
// so callers can pass a freshly derived child and two calls with the same
// (spec, n, seed) produce identical rows.
func generateRows(ts TableSpec, n int, r *sim.RNG) []value.Row {
	// Per-column samplers.
	type sampler func(rowID int64, row value.Row) value.Value
	samplers := make([]sampler, len(ts.Columns))
	ordOf := make(map[string]int)
	for i, c := range ts.Columns {
		ordOf[strings.ToLower(c.Name)] = i
	}
	for i, c := range ts.Columns {
		c := c
		switch {
		case c.Name == "id":
			samplers[i] = func(rowID int64, _ value.Row) value.Value { return value.NewInt(rowID) }
		case c.CorrelatedWith != "":
			base := ordOf[strings.ToLower(c.CorrelatedWith)]
			factor := int64(c.CorrFactor)
			samplers[i] = func(_ int64, row value.Row) value.Value {
				return value.NewInt(row[base].I % factor)
			}
		case c.Kind == value.Int:
			d := uint64(c.Distinct)
			if d < 2 {
				d = 2
			}
			if c.ZipfS > 1 {
				z := r.Child(c.Name).NewZipf(c.ZipfS, d)
				samplers[i] = func(_ int64, _ value.Row) value.Value { return value.NewInt(int64(z.Uint64())) }
			} else {
				cr := r.Child(c.Name)
				samplers[i] = func(_ int64, _ value.Row) value.Value { return value.NewInt(cr.Int63n(int64(d))) }
			}
		case c.Kind == value.String && !c.Wide:
			d := uint64(c.Distinct)
			if d < 2 {
				d = 2
			}
			if c.ZipfS > 1 {
				z := r.Child(c.Name).NewZipf(c.ZipfS, d)
				samplers[i] = func(_ int64, _ value.Row) value.Value {
					return value.NewString(fmt.Sprintf("%s_%d", c.Name, z.Uint64()))
				}
			} else {
				cr := r.Child(c.Name)
				samplers[i] = func(_ int64, _ value.Row) value.Value {
					return value.NewString(fmt.Sprintf("%s_%d", c.Name, cr.Intn(int(d))))
				}
			}
		case c.Wide:
			cr := r.Child(c.Name)
			samplers[i] = func(rowID int64, _ value.Row) value.Value {
				return value.NewString(fmt.Sprintf("blob-%d-%d-%s", rowID, cr.Intn(1<<20), strings.Repeat("x", 32)))
			}
		case c.Kind == value.Float:
			cr := r.Child(c.Name)
			samplers[i] = func(_ int64, _ value.Row) value.Value {
				return value.NewFloat(cr.LogNormal(100, 0.8))
			}
		default:
			samplers[i] = func(_ int64, _ value.Row) value.Value { return value.NewNull() }
		}
	}
	rows := make([]value.Row, n)
	for rowID := 0; rowID < n; rowID++ {
		row := make(value.Row, len(ts.Columns))
		for i := range ts.Columns {
			row[i] = samplers[i](int64(rowID), row)
		}
		rows[rowID] = row
	}
	return rows
}
