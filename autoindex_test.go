package autoindex

import (
	"fmt"
	"testing"
	"time"

	"autoindex/internal/schema"
	"autoindex/internal/sqlparser"
)

func seedDatabase(t testing.TB, r *Region, name string) *Database {
	t.Helper()
	db := r.NewDatabase(name, TierStandard)
	if _, err := db.Exec(`CREATE TABLE items (id BIGINT NOT NULL, cat BIGINT, price FLOAT, PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := db.Exec(fmt.Sprintf(
			`INSERT INTO items (id, cat, price) VALUES (%d, %d, %d.5)`, i, i%150, i)); err != nil {
			t.Fatal(err)
		}
	}
	db.RebuildAllStats()
	return db
}

func TestRegionEndToEnd(t *testing.T) {
	r := NewRegion(1)
	db := seedDatabase(t, r, "app")
	r.Manage(db, "srv", Settings{AutoCreate: true, AutoDrop: true})

	for h := 0; h < 30; h++ {
		for q := 0; q < 15; q++ {
			if _, err := db.Exec(fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, (h*17+q)%150)); err != nil {
				t.Fatal(err)
			}
		}
		r.Advance(time.Hour)
	}

	implemented := false
	for _, def := range db.IndexDefs() {
		if def.AutoCreated {
			implemented = true
		}
	}
	if !implemented {
		t.Fatal("service did not implement an index")
	}
	if len(r.History("app")) == 0 {
		t.Fatal("no action history")
	}
	stats := r.OpStats()
	if stats.CreatesImplemented == 0 || stats.Validations == 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestManualApplyFlow(t *testing.T) {
	r := NewRegion(2)
	db := seedDatabase(t, r, "manual")
	r.Manage(db, "srv", Settings{}) // auto-implementation off

	for h := 0; h < 12; h++ {
		for q := 0; q < 15; q++ {
			db.Exec(fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, (h+q)%150)) //nolint:errcheck
		}
		r.Advance(time.Hour)
	}
	recs := r.Recommendations("manual")
	if len(recs) == 0 {
		t.Fatal("no recommendations surfaced")
	}
	detail, err := r.Details(recs[0].ID)
	if err != nil || detail == "" {
		t.Fatalf("details: %v", err)
	}
	if err := r.Apply(recs[0].ID); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 16; h++ {
		for q := 0; q < 15; q++ {
			db.Exec(fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, (h+q)%150)) //nolint:errcheck
		}
		r.Advance(time.Hour)
	}
	rec, ok := r.Plane().StateStore().GetRecord(recs[0].ID)
	if !ok || rec.State.Terminal() == false && rec.State != "Validating" {
		if !ok {
			t.Fatal("record lost")
		}
	}
	if _, exists := db.IndexDef(recs[0].Index.Name); !exists && rec.State != "Reverted" {
		t.Fatalf("applied index missing, state=%s", rec.State)
	}
}

func TestServerInheritance(t *testing.T) {
	r := NewRegion(3)
	r.SetServerSettings("srv", ServerSettings{AutoCreate: true})
	db := seedDatabase(t, r, "inherit")
	r.Manage(db, "srv", Settings{InheritFromServer: true})
	for h := 0; h < 24; h++ {
		for q := 0; q < 15; q++ {
			db.Exec(fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, (h*3+q)%150)) //nolint:errcheck
		}
		r.Advance(time.Hour)
	}
	found := false
	for _, def := range db.IndexDefs() {
		if def.AutoCreated {
			found = true
		}
	}
	if !found {
		t.Fatal("inherited auto-create did not implement")
	}
}

// helpers shared with bench_test.go

func mustIndexDef() schema.IndexDef {
	return schema.IndexDef{
		Name: "hypo_cat", Table: "items",
		KeyColumns: []string{"cat"}, IncludedColumns: []string{"price"},
	}
}

func mustParse(sql string) sqlparser.Statement {
	return sqlparser.MustParse(sql)
}

func TestMultiRegionDashboard(t *testing.T) {
	regions := map[string]*Region{}
	for _, name := range []string{"west-eu", "east-us"} {
		r := NewRegion(int64(len(name)))
		db := seedDatabase(t, r, "db-"+name)
		r.Manage(db, "srv", Settings{AutoCreate: true})
		for h := 0; h < 20; h++ {
			for q := 0; q < 12; q++ {
				db.Exec(fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, (h+q)%150)) //nolint:errcheck
			}
			r.Advance(time.Hour)
		}
		regions[name] = r
	}
	rows := Dashboard(regions)
	if len(rows) != 2 || rows[0].Region != "east-us" {
		t.Fatalf("rows: %+v", rows)
	}
	total := DashboardTotal(rows)
	if total.Databases != 2 {
		t.Fatalf("total: %+v", total)
	}
	if total.CreatesImplemented == 0 {
		t.Fatal("nothing implemented across regions")
	}
}
