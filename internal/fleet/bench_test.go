package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// benchOpsOnce builds a small fleet and runs a short §8.1 simulation at
// the given worker count — the workload BenchmarkFleetParallel measures.
func benchOpsOnce(b *testing.B, workers int) {
	b.Helper()
	spec := Spec{Databases: 4, MixedTiers: true, Seed: 20170301, UserIndexes: true, Workers: workers}
	f, err := Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultOpsConfig()
	cfg.Days = 2
	cfg.StatementsPerHour = 10
	cfg.NewTenantEvery = 0
	if _, err := f.RunOps(Spec{Seed: spec.Seed, UserIndexes: true}, cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFleetParallel measures the sharded fleet harness at several
// worker-pool sizes and records the numbers in BENCH_fleet.json at the
// repo root. Results are bit-identical across worker counts (see
// determinism_test.go); only wall-clock time changes — and only when the
// host actually has spare cores, which is why the report includes NumCPU
// and GOMAXPROCS alongside the timings.
func BenchmarkFleetParallel(b *testing.B) {
	type timing struct {
		Workers   int     `json:"workers"`
		NsPerOp   int64   `json:"ns_per_op"`
		SecPerOp  float64 `json:"sec_per_op"`
		SpeedupX1 float64 `json:"speedup_vs_workers_1"`
	}
	// The harness invokes each sub-benchmark more than once while
	// calibrating b.N; keep only the final (largest-N) measurement.
	workerSet := []int{1, 4, 8}
	latest := make(map[int]timing)
	for _, w := range workerSet {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(sb *testing.B) {
			start := time.Now()
			for i := 0; i < sb.N; i++ {
				benchOpsOnce(sb, w)
			}
			per := time.Since(start).Nanoseconds() / int64(sb.N)
			latest[w] = timing{Workers: w, NsPerOp: per, SecPerOp: float64(per) / 1e9}
		})
	}
	if len(latest) == 0 {
		return
	}
	timings := make([]timing, 0, len(latest))
	for _, w := range workerSet {
		if t, ok := latest[w]; ok {
			timings = append(timings, t)
		}
	}
	base := timings[0].SecPerOp
	for i := range timings {
		if timings[i].SecPerOp > 0 {
			timings[i].SpeedupX1 = base / timings[i].SecPerOp
		}
	}
	report := map[string]any{
		"benchmark":  "BenchmarkFleetParallel",
		"workload":   "Build(4 mixed-tier tenants) + RunOps(2 days, 10 stmts/hour)",
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"note":       "speedup requires spare cores; on a single-CPU host all worker counts cost the same wall-clock",
		"timings":    timings,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_fleet.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("could not write BENCH_fleet.json: %v", err)
	}
}
