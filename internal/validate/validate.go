// Package validate implements the paper's validator (§6): after an index
// change is implemented, it compares execution statistics before and after
// the change using Query Store, restricted to logical metrics (CPU time,
// logical reads) and to queries that executed in both windows *and* whose
// plan changed because of the index. Statistical significance comes from
// Welch's t-test over the per-plan mean/variance/count aggregates Query
// Store maintains. Two revert policies are provided: the conservative
// per-statement trigger (any significant regression of a statement that
// consumes a meaningful share of the database's resources reverts the
// change) and the aggregate policy (revert only if the workload regresses
// net of improvements).
package validate

import (
	"fmt"
	"math"
	"sort"
	"time"

	"autoindex/internal/mathx"
	"autoindex/internal/querystore"
)

// Policy selects the revert trigger.
type Policy int

// Revert policies (§6).
const (
	// PolicyPerStatement reverts on any significant per-statement
	// regression above the resource-share floor (the conservative
	// default).
	PolicyPerStatement Policy = iota
	// PolicyAggregate reverts only when the workload regresses in
	// aggregate, allowing individual statements to regress if others
	// improve more.
	PolicyAggregate
)

// String names the policy.
func (p Policy) String() string {
	if p == PolicyAggregate {
		return "aggregate"
	}
	return "per-statement"
}

// Config tunes validation.
type Config struct {
	// Alpha is the significance level for the Welch t-test.
	Alpha float64
	// RegressionRatio is the minimum worsening (after/before mean ratio)
	// to call a regression; improvements use its reciprocal.
	RegressionRatio float64
	// MinExecutions per window for a query to be judged.
	MinExecutions int64
	// MinResourceShare is the fraction of the database's total CPU a
	// regressed statement must consume to trigger a per-statement revert.
	MinResourceShare float64
	Policy           Policy
}

// DefaultConfig returns production-like settings.
func DefaultConfig() Config {
	return Config{
		Alpha:            0.05,
		RegressionRatio:  1.4,
		MinExecutions:    3,
		MinResourceShare: 0.002,
		Policy:           PolicyPerStatement,
	}
}

// Verdict classifies one query or the whole change.
type Verdict int

// Verdicts.
const (
	VerdictInconclusive Verdict = iota
	VerdictImproved
	VerdictRegressed
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictImproved:
		return "improved"
	case VerdictRegressed:
		return "regressed"
	default:
		return "inconclusive"
	}
}

// QueryVerdict is the per-query comparison result.
type QueryVerdict struct {
	QueryHash     uint64
	Metric        querystore.Metric
	Before, After mathx.Sample
	P             float64
	Verdict       Verdict
	// ResourceShare is the query's share of total CPU in the combined
	// window.
	ResourceShare float64
}

// Outcome is the full validation result.
type Outcome struct {
	Index    string
	Created  bool // true: index was created; false: dropped
	Verdict  Verdict
	Revert   bool
	Queries  []QueryVerdict
	Policy   Policy
	Analyzed int
	// CPUDeltaWeighted is the execution-weighted net CPU change
	// (negative = improvement).
	CPUDeltaWeighted float64
}

// Describe renders a summary for the action history UI.
func (o Outcome) Describe() string {
	return fmt.Sprintf("validate %s (created=%v): %s, revert=%v, %d queries analyzed",
		o.Index, o.Created, o.Verdict, o.Revert, o.Analyzed)
}

// Validate compares the windows around an index change.
//
// qs is the database's Query Store; index the changed index name; created
// whether it was created (vs dropped); changeAt the implementation time;
// window the comparison horizon on each side.
func Validate(qs *querystore.Store, index string, created bool, changeAt time.Time, window time.Duration, cfg Config) Outcome {
	if cfg.Alpha == 0 {
		cfg = DefaultConfig()
	}
	out := Outcome{Index: index, Created: created, Policy: cfg.Policy}
	// Snap windows to Query Store interval boundaries and discard the
	// interval containing the change itself: it mixes pre- and post-change
	// executions and would contaminate both sides.
	iv := qs.Interval()
	cut := changeAt.Truncate(iv)
	beforeFrom, beforeTo := cut.Add(-window), cut
	afterFrom, afterTo := cut.Add(iv), cut.Add(iv).Add(window)

	// Queries whose plan references the index on the relevant side: the
	// new plan must use a created index; the old plan must have used a
	// dropped one (§6's plan-change filter).
	var hashes []uint64
	if created {
		hashes = qs.QueriesUsingIndex(index, afterFrom, afterTo)
	} else {
		hashes = qs.QueriesUsingIndex(index, beforeFrom, beforeTo)
	}

	totalCPU := 0.0
	for _, qc := range qs.Costs(beforeFrom) {
		totalCPU += qc.TotalCPU
	}

	improvedW, regressedW := 0.0, 0.0
	for _, h := range hashes {
		// Plan change check: a plan present on one side only.
		if !planChanged(qs, h, index, created, beforeFrom, beforeTo, afterFrom, afterTo) {
			continue
		}
		for _, metric := range []querystore.Metric{querystore.MetricCPU, querystore.MetricLogicalReads} {
			qv, ok := judge(qs, h, metric, beforeFrom, beforeTo, afterFrom, afterTo, cfg)
			if !ok {
				continue
			}
			if totalCPU > 0 {
				if s, ok := qs.QueryWindowSample(h, querystore.MetricCPU, beforeFrom, afterTo); ok {
					qv.ResourceShare = s.Mean * float64(s.N) / totalCPU
				}
			}
			out.Queries = append(out.Queries, qv)
			if metric == querystore.MetricCPU {
				out.Analyzed++
				delta := (qv.After.Mean - qv.Before.Mean) * float64(qv.After.N)
				out.CPUDeltaWeighted += delta
				switch qv.Verdict {
				case VerdictImproved:
					improvedW += -delta
				case VerdictRegressed:
					regressedW += delta
				}
			}
		}
	}
	sort.Slice(out.Queries, func(i, j int) bool {
		if out.Queries[i].QueryHash != out.Queries[j].QueryHash {
			return out.Queries[i].QueryHash < out.Queries[j].QueryHash
		}
		return out.Queries[i].Metric < out.Queries[j].Metric
	})

	// Decide the overall verdict and revert.
	switch cfg.Policy {
	case PolicyPerStatement:
		for _, qv := range out.Queries {
			if qv.Verdict == VerdictRegressed && qv.ResourceShare >= cfg.MinResourceShare {
				out.Verdict = VerdictRegressed
				out.Revert = true
				break
			}
		}
		if !out.Revert {
			for _, qv := range out.Queries {
				if qv.Verdict == VerdictImproved {
					out.Verdict = VerdictImproved
					break
				}
			}
		}
	case PolicyAggregate:
		switch {
		case regressedW > improvedW && regressedW > 0:
			out.Verdict = VerdictRegressed
			out.Revert = true
		case improvedW > 0:
			out.Verdict = VerdictImproved
		}
	}
	return out
}

// planChanged verifies the §6 condition: for a created index some plan in
// the after-window references it while the before-window ran without it;
// for a drop, the before-plan referenced it and the after-plan does not.
func planChanged(qs *querystore.Store, queryHash uint64, index string, created bool,
	bFrom, bTo, aFrom, aTo time.Time,
) bool {
	before := qs.PlansInWindow(queryHash, bFrom, bTo)
	after := qs.PlansInWindow(queryHash, aFrom, aTo)
	if len(before) == 0 || len(after) == 0 {
		return false // must have executed on both sides
	}
	usedBefore, usedAfter := false, false
	for _, p := range before {
		if p.Info.UsesIndex(index) {
			usedBefore = true
		}
	}
	for _, p := range after {
		if p.Info.UsesIndex(index) {
			usedAfter = true
		}
	}
	if created {
		return usedAfter && !usedBefore
	}
	return usedBefore && !usedAfter
}

// judge runs the Welch t-test for one query and metric.
func judge(qs *querystore.Store, queryHash uint64, metric querystore.Metric,
	bFrom, bTo, aFrom, aTo time.Time, cfg Config,
) (QueryVerdict, bool) {
	before, okB := qs.QueryWindowSample(queryHash, metric, bFrom, bTo)
	after, okA := qs.QueryWindowSample(queryHash, metric, aFrom, aTo)
	if !okB || !okA || before.N < cfg.MinExecutions || after.N < cfg.MinExecutions {
		return QueryVerdict{}, false
	}
	qv := QueryVerdict{QueryHash: queryHash, Metric: metric, Before: before, After: after, Verdict: VerdictInconclusive}
	res, ok := mathx.Welch(after, before)
	if !ok {
		return qv, true
	}
	qv.P = res.P
	if res.P < cfg.Alpha {
		ratio := safeRatio(after.Mean, before.Mean)
		switch {
		case after.Mean > before.Mean && ratio >= cfg.RegressionRatio:
			qv.Verdict = VerdictRegressed
		case after.Mean < before.Mean && safeRatio(before.Mean, after.Mean) >= cfg.RegressionRatio:
			qv.Verdict = VerdictImproved
		}
	}
	return qv, true
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		if a <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}
