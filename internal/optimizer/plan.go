package optimizer

import (
	"fmt"
	"hash/fnv"
	"strings"

	"autoindex/internal/sqlparser"
)

// Cost model weights. Estimated and actual costs use the same units — one
// unit per logical page read, CPUPerRow units per row of CPU work — so the
// optimizer's estimate and the executor's measurement are directly
// comparable. The divergence between them comes from cardinality errors,
// not unit mismatches.
const (
	// CPUPerRow is the CPU charge for processing one row in an operator.
	CPUPerRow = 0.002
	// CPUPerCompare is the extra CPU charge per comparison in sorts.
	CPUPerCompare = 0.001
	// HashBuildPerRow is the CPU charge per row on a hash-build side.
	HashBuildPerRow = 0.004
	// RandomPageFactor penalises random page access (lookups) relative to
	// sequential scans.
	RandomPageFactor = 2.0
)

// NodeKind enumerates physical operators.
type NodeKind int

// Physical operator kinds.
const (
	KindSeqScan NodeKind = iota
	KindIndexSeek
	KindIndexScan
	KindSort
	KindHashJoin
	KindNLJoin
	KindHashAgg
	KindScalarAgg
	KindTop
	KindProject
	KindInsert
	KindUpdate
	KindDelete
)

// String names the operator.
func (k NodeKind) String() string {
	switch k {
	case KindSeqScan:
		return "SeqScan"
	case KindIndexSeek:
		return "IndexSeek"
	case KindIndexScan:
		return "IndexScan"
	case KindSort:
		return "Sort"
	case KindHashJoin:
		return "HashJoin"
	case KindNLJoin:
		return "NestedLoops"
	case KindHashAgg:
		return "HashAggregate"
	case KindScalarAgg:
		return "ScalarAggregate"
	case KindTop:
		return "Top"
	case KindProject:
		return "Project"
	case KindInsert:
		return "Insert"
	case KindUpdate:
		return "Update"
	case KindDelete:
		return "Delete"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one operator in a physical plan tree.
type Node struct {
	Kind  NodeKind
	Table string // base table name for access/write nodes
	Alias string // binding alias for access nodes
	Index string // index name for seeks/scans

	// SeekEq holds the equality predicates matched to the index key
	// prefix; SeekRange the (at most two: lower/upper) range predicates on
	// the following key column; Residual the predicates evaluated after
	// fetching.
	SeekEq    []sqlparser.Predicate
	SeekRange []sqlparser.Predicate
	Residual  []sqlparser.Predicate

	// Lookup is set when a non-covering seek must fetch the base row.
	Lookup bool

	// Join fields (left child is outer/probe, right child is inner/build).
	JoinLeft  sqlparser.ColRef
	JoinRight sqlparser.ColRef

	GroupBy []sqlparser.ColRef
	Items   []sqlparser.SelectItem
	OrderBy []sqlparser.OrderItem
	TopN    int

	// Write fields.
	WriteRows    float64  // estimated affected rows
	MaintIndexes []string // indexes maintained by the write
	Set          []sqlparser.Assignment

	Children []*Node

	// EstRows is the estimated output cardinality; EstCost the cumulative
	// estimated cost of the subtree.
	EstRows float64
	EstCost float64
}

// Plan is a complete physical plan for one statement.
type Plan struct {
	Stmt    sqlparser.Statement
	Root    *Node
	EstCost float64
	EstRows float64
	// IndexesUsed lists every index referenced anywhere in the plan,
	// including those maintained by writes. It feeds the Query Store plan
	// fingerprint that the validator's plan-change filter inspects.
	IndexesUsed []string
	PlanHash    uint64
	// QueryHash is the canonical statement fingerprint, computed once per
	// regular (non-what-if) optimization so Query Store ingestion and MI
	// emission share one derivation. Zero for what-if plans, which are
	// keyed externally by the plan-cost cache.
	QueryHash uint64
}

// shape serialises the plan's structure (operators, tables, indexes — not
// literals) for hashing and explain output.
func (n *Node) shape(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Kind.String())
	if n.Table != "" {
		b.WriteString(" ")
		b.WriteString(strings.ToLower(n.Table))
	}
	if n.Index != "" {
		b.WriteString(" [")
		b.WriteString(strings.ToLower(n.Index))
		b.WriteString("]")
	}
	if n.Lookup {
		b.WriteString(" +lookup")
	}
	if len(n.SeekEq)+len(n.SeekRange) > 0 {
		b.WriteString(" seek(")
		for i, p := range n.SeekEq {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(strings.ToLower(p.Col.Column))
		}
		for _, p := range n.SeekRange {
			b.WriteString(";")
			b.WriteString(strings.ToLower(p.Col.Column))
			b.WriteString(p.Op.String())
		}
		b.WriteString(")")
	}
	for _, m := range n.MaintIndexes {
		b.WriteString(" maint[")
		b.WriteString(strings.ToLower(m))
		b.WriteString("]")
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		c.shape(b, depth+1)
	}
}

// Shape returns the plan's structural serialisation.
func (p *Plan) Shape() string {
	var b strings.Builder
	p.Root.shape(&b, 0)
	return b.String()
}

// Explain renders the plan with estimates, for recommendation details and
// debugging.
func (p *Plan) Explain() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Kind.String())
		if n.Table != "" {
			fmt.Fprintf(&b, " %s", n.Table)
		}
		if n.Index != "" {
			fmt.Fprintf(&b, " [%s]", n.Index)
		}
		if n.Lookup {
			b.WriteString(" +lookup")
		}
		fmt.Fprintf(&b, "  (rows=%.1f cost=%.2f)\n", n.EstRows, n.EstCost)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return b.String()
}

// computeHash fills PlanHash and IndexesUsed from the tree.
func (p *Plan) finalize() {
	h := fnv.New64a()
	seen := make(map[string]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Index != "" && !seen[strings.ToLower(n.Index)] {
			seen[strings.ToLower(n.Index)] = true
			p.IndexesUsed = append(p.IndexesUsed, n.Index)
		}
		for _, m := range n.MaintIndexes {
			if !seen[strings.ToLower(m)] {
				seen[strings.ToLower(m)] = true
				p.IndexesUsed = append(p.IndexesUsed, m)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if p.Root != nil {
		walk(p.Root)
		h.Write([]byte(p.Shape()))
	}
	p.PlanHash = h.Sum64()
	if p.Root != nil {
		p.EstCost = p.Root.EstCost
		p.EstRows = p.Root.EstRows
	}
}
