// Package telemetry provides the anonymized, aggregated signals the
// service is debugged through (§1.2, §3): engineers never see query text
// or data, only counters and coarse events. Components emit into a Hub;
// dashboards (the fleetsim binary) read aggregated views.
//
// The Hub is contention-safe under parallel emitters: counters are split
// across lock-striped shards keyed by counter name, so tenants simulated
// on different worker goroutines rarely contend on the same mutex, and
// Snapshot gives readers a consistent point-in-time view mid-run. All
// accessors return copies — callers can never race with concurrent
// Emit/Inc through a returned slice or map.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Event is one coarse, anonymized service event.
type Event struct {
	At       time.Time
	Database string // database name is a pseudonymous identifier
	Kind     string
	Detail   string // must not contain customer data
}

// counterShards is the number of lock stripes for counters. 16 keeps the
// per-shard maps small and makes same-name contention the only contention.
const counterShards = 16

type counterShard struct {
	mu sync.Mutex
	m  map[string]int64
}

// Hub collects counters and events.
type Hub struct {
	shards [counterShards]counterShard
	evMu   sync.Mutex
	events []Event
	maxEv  int
	// dropper, when set, is consulted per Emit; a true return loses the
	// event (chaos mode's lossy telemetry pipeline). Dropped events are
	// counted in the "telemetry.dropped" counter so loss stays observable
	// — the paper's engineers debug through aggregates, and an aggregate
	// that silently under-counts would be worse than one that says how
	// much it lost.
	dropper func(Event) bool
}

// NewHub returns an empty hub retaining up to maxEvents events.
func NewHub(maxEvents int) *Hub {
	if maxEvents <= 0 {
		maxEvents = 4096
	}
	h := &Hub{maxEv: maxEvents}
	for i := range h.shards {
		h.shards[i].m = make(map[string]int64)
	}
	return h
}

// shard returns the counter shard for a name.
func (h *Hub) shard(name string) *counterShard {
	f := fnv.New32a()
	f.Write([]byte(name))
	return &h.shards[f.Sum32()%counterShards]
}

// Inc adds delta to a named counter.
func (h *Hub) Inc(name string, delta int64) {
	s := h.shard(name)
	s.mu.Lock()
	s.m[name] += delta
	s.mu.Unlock()
}

// Counter reads a counter.
func (h *Hub) Counter(name string) int64 {
	s := h.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// Counters returns a sorted, formatted copy of all counters.
func (h *Hub) Counters() []string {
	c := h.counterMap()
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s=%d", n, c[n])
	}
	return out
}

// counterMap copies every shard's counters while holding all shard locks,
// so the result is a consistent cross-shard view.
func (h *Hub) counterMap() map[string]int64 {
	for i := range h.shards {
		h.shards[i].mu.Lock()
	}
	out := make(map[string]int64)
	for i := range h.shards {
		for n, v := range h.shards[i].m {
			out[n] = v
		}
	}
	for i := len(h.shards) - 1; i >= 0; i-- {
		h.shards[i].mu.Unlock()
	}
	return out
}

// SetDropper installs (or, with nil, removes) the lossy-pipeline hook
// consulted by Emit. Install before emitters start; the hook itself must
// be safe for concurrent use.
func (h *Hub) SetDropper(f func(Event) bool) {
	h.evMu.Lock()
	h.dropper = f
	h.evMu.Unlock()
}

// Emit records an event (dropping the oldest past capacity). Events lost
// to an installed dropper increment "telemetry.dropped" instead.
func (h *Hub) Emit(e Event) {
	h.evMu.Lock()
	drop := h.dropper != nil && h.dropper(e)
	if !drop {
		h.events = append(h.events, e)
		if len(h.events) > h.maxEv {
			h.events = h.events[len(h.events)-h.maxEv:]
		}
	}
	h.evMu.Unlock()
	if drop {
		h.Inc("telemetry.dropped", 1)
	}
}

// Events returns a copy of retained events; the hub keeps no reference to
// the returned slice.
func (h *Hub) Events() []Event {
	h.evMu.Lock()
	defer h.evMu.Unlock()
	return append([]Event(nil), h.events...)
}

// Snapshot is a consistent point-in-time copy of the hub's state.
type Snapshot struct {
	Counters map[string]int64
	Events   []Event
}

// Snapshot captures all counters and events atomically: every shard lock
// and the event lock are held together while copying, so no Inc or Emit
// can land between a counter being read and an event being read. Safe to
// call mid-run from a dashboard goroutine while emitters are active.
func (h *Hub) Snapshot() Snapshot {
	for i := range h.shards {
		h.shards[i].mu.Lock()
	}
	h.evMu.Lock()
	counters := make(map[string]int64)
	for i := range h.shards {
		for n, v := range h.shards[i].m {
			counters[n] = v
		}
	}
	events := append([]Event(nil), h.events...)
	h.evMu.Unlock()
	for i := len(h.shards) - 1; i >= 0; i-- {
		h.shards[i].mu.Unlock()
	}
	return Snapshot{Counters: counters, Events: events}
}
