package querystore

import (
	"testing"
	"time"

	"autoindex/internal/sim"
)

func record(s *Store, qh, ph uint64, cpu float64, n int) {
	for i := 0; i < n; i++ {
		s.Record(qh, QueryMeta{Text: "SELECT x"},
			PlanInfo{PlanHash: ph, IndexesUsed: []string{"ix1"}},
			Measurement{CPUMillis: cpu, LogicalReads: cpu * 2, DurationMillis: cpu * 3})
	}
}

func TestRecordAndAggregate(t *testing.T) {
	clock := sim.NewClock()
	s := New(clock, time.Hour)
	record(s, 1, 10, 5, 4)
	clock.Advance(30 * time.Minute)
	record(s, 1, 10, 7, 2)

	q, ok := s.Query(1)
	if !ok || len(q.Plans) != 1 {
		t.Fatalf("query entry: %+v", q)
	}
	p := q.Plans[10]
	// Same interval (hour): one IntervalStats with 6 executions.
	if len(p.Intervals) != 1 || p.Intervals[0].Count != 6 {
		t.Fatalf("intervals: %+v", p.Intervals)
	}
	clock.Advance(time.Hour)
	record(s, 1, 10, 9, 3)
	if len(q.Plans[10].Intervals) != 2 {
		t.Fatal("new interval expected after an hour")
	}
	sample, ok := s.QueryWindowSample(1, MetricCPU, time.Time{}, clock.Now().Add(time.Hour))
	if !ok || sample.N != 9 {
		t.Fatalf("sample: %+v %v", sample, ok)
	}
}

func TestTopByCPUAndCoverageHelpers(t *testing.T) {
	clock := sim.NewClock()
	s := New(clock, time.Hour)
	record(s, 1, 10, 100, 5) // expensive
	record(s, 2, 20, 1, 50)  // frequent but cheap
	record(s, 3, 30, 10, 2)

	top := s.TopByCPU(time.Time{}, 2)
	if len(top) != 2 || top[0].QueryHash != 1 {
		t.Fatalf("top: %+v", top)
	}
	total := s.TotalCPU(time.Time{})
	if total < 500+50+20-1 || total > 600 {
		t.Fatalf("total CPU = %v", total)
	}
	costs := s.Costs(time.Time{})
	if len(costs) != 3 {
		t.Fatalf("costs: %+v", costs)
	}
}

func TestWindowingExcludesOutside(t *testing.T) {
	clock := sim.NewClock()
	s := New(clock, time.Hour)
	record(s, 1, 10, 5, 3)
	mid := clock.Now().Add(time.Hour)
	clock.Advance(2 * time.Hour)
	record(s, 1, 10, 50, 3)

	before, ok := s.QueryWindowSample(1, MetricCPU, time.Time{}, mid)
	if !ok || before.N != 3 || before.Mean > 10 {
		t.Fatalf("before window: %+v", before)
	}
	after, ok := s.QueryWindowSample(1, MetricCPU, mid, clock.Now().Add(time.Hour))
	if !ok || after.N != 3 || after.Mean < 10 {
		t.Fatalf("after window: %+v", after)
	}
	if _, ok := s.QueryWindowSample(99, MetricCPU, time.Time{}, mid); ok {
		t.Fatal("unknown query must miss")
	}
}

func TestPlanChangeTracking(t *testing.T) {
	clock := sim.NewClock()
	s := New(clock, time.Hour)
	s.Record(7, QueryMeta{Text: "q"}, PlanInfo{PlanHash: 1, IndexesUsed: nil}, Measurement{CPUMillis: 10})
	clock.Advance(2 * time.Hour)
	cut := clock.Now()
	s.Record(7, QueryMeta{Text: "q"}, PlanInfo{PlanHash: 2, IndexesUsed: []string{"IX_new"}}, Measurement{CPUMillis: 3})

	afterPlans := s.PlansInWindow(7, cut, clock.Now().Add(time.Hour))
	if len(afterPlans) != 1 || afterPlans[0].Info.PlanHash != 2 {
		t.Fatalf("after plans: %+v", afterPlans)
	}
	if !afterPlans[0].Info.UsesIndex("ix_new") {
		t.Fatal("UsesIndex must be case-insensitive")
	}
	hs := s.QueriesUsingIndex("ix_new", cut, clock.Now().Add(time.Hour))
	if len(hs) != 1 || hs[0] != 7 {
		t.Fatalf("queries using index: %v", hs)
	}
	if hs := s.QueriesUsingIndex("ix_new", time.Time{}, cut); len(hs) != 0 {
		t.Fatalf("index used before it existed: %v", hs)
	}
}

func TestTruncationUpgrade(t *testing.T) {
	clock := sim.NewClock()
	s := New(clock, time.Hour)
	s.Record(5, QueryMeta{Text: "SELECT partial...", Truncated: true}, PlanInfo{PlanHash: 1}, Measurement{})
	q, _ := s.Query(5)
	if !q.Truncated {
		t.Fatal("should be truncated")
	}
	s.Record(5, QueryMeta{Text: "SELECT full FROM t"}, PlanInfo{PlanHash: 1}, Measurement{})
	q, _ = s.Query(5)
	if q.Truncated || q.Text != "SELECT full FROM t" {
		t.Fatalf("full text should win: %+v", q)
	}
}

func TestMetricsIndependent(t *testing.T) {
	clock := sim.NewClock()
	s := New(clock, time.Hour)
	s.Record(1, QueryMeta{Text: "q", IsWrite: true}, PlanInfo{PlanHash: 1}, Measurement{CPUMillis: 5, LogicalReads: 100, DurationMillis: 20})
	end := clock.Now().Add(time.Hour)
	cpu, _ := s.QueryWindowSample(1, MetricCPU, time.Time{}, end)
	reads, _ := s.QueryWindowSample(1, MetricLogicalReads, time.Time{}, end)
	dur, _ := s.QueryWindowSample(1, MetricDuration, time.Time{}, end)
	if cpu.Mean != 5 || reads.Mean != 100 || dur.Mean != 20 {
		t.Fatalf("metrics mixed up: %v %v %v", cpu.Mean, reads.Mean, dur.Mean)
	}
	costs := s.Costs(time.Time{})
	if !costs[0].IsWrite {
		t.Fatal("IsWrite lost")
	}
}
