package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"autoindex/internal/optimizer"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/sqlparser"
	"autoindex/internal/value"
)

func testDB(t *testing.T) (*Database, *sim.VirtualClock) {
	t.Helper()
	clock := sim.NewClock()
	d := New(DefaultConfig("testdb", TierStandard, 42), clock)
	mustExec(t, d, `CREATE TABLE orders (id BIGINT NOT NULL, customer_id BIGINT, status VARCHAR, amount FLOAT, created BIGINT, PRIMARY KEY (id))`)
	mustExec(t, d, `CREATE TABLE customers (id BIGINT NOT NULL, region VARCHAR, name VARCHAR, PRIMARY KEY (id))`)
	for i := 0; i < 500; i++ {
		status := "'open'"
		if i%5 == 0 {
			status = "'closed'"
		}
		mustExec(t, d, sprintf(`INSERT INTO orders (id, customer_id, status, amount, created) VALUES (%d, %d, %s, %d.5, %d)`,
			i, i%50, status, i%100, i))
	}
	for i := 0; i < 50; i++ {
		region := "'east'"
		if i%2 == 0 {
			region = "'west'"
		}
		mustExec(t, d, sprintf(`INSERT INTO customers (id, region, name) VALUES (%d, %s, 'cust%d')`, i, region, i))
	}
	d.RebuildAllStats()
	return d, clock
}

func sprintf(format string, args ...any) string {
	return strings.TrimSpace(fmt.Sprintf(format, args...))
}

func mustExec(t *testing.T, d *Database, sql string) *Result {
	t.Helper()
	res, err := d.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestSelectSeqScan(t *testing.T) {
	d, _ := testDB(t)
	res := mustExec(t, d, `SELECT id, amount FROM orders WHERE status = 'closed'`)
	if len(res.Rows) != 100 {
		t.Fatalf("want 100 closed orders, got %d", len(res.Rows))
	}
	if res.Measured.LogicalReads == 0 {
		t.Fatal("expected logical reads to be charged")
	}
}

func TestPointQueryUsesClusteredSeek(t *testing.T) {
	d, _ := testDB(t)
	res := mustExec(t, d, `SELECT amount FROM orders WHERE id = 42`)
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(res.Rows))
	}
	if !strings.Contains(res.Plan.Shape(), "pk_orders") {
		t.Fatalf("expected clustered seek, plan:\n%s", res.Plan.Explain())
	}
	// A point seek must be far cheaper than a full scan.
	scan := mustExec(t, d, `SELECT amount FROM orders WHERE status = 'nope'`)
	if res.Measured.LogicalReads >= scan.Measured.LogicalReads {
		t.Fatalf("seek reads %v >= scan reads %v", res.Measured.LogicalReads, scan.Measured.LogicalReads)
	}
}

func TestSecondaryIndexSeekAndCorrectness(t *testing.T) {
	d, _ := testDB(t)
	want := mustExec(t, d, `SELECT id FROM orders WHERE customer_id = 7`)
	mustExec(t, d, `CREATE INDEX ix_orders_cust ON orders (customer_id) INCLUDE (amount)`)
	got := mustExec(t, d, `SELECT id FROM orders WHERE customer_id = 7`)
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("index changed result: %d vs %d rows", len(got.Rows), len(want.Rows))
	}
	if !planUses(got.Plan, "ix_orders_cust") {
		t.Fatalf("expected plan to use ix_orders_cust:\n%s", got.Plan.Explain())
	}
	if got.Measured.LogicalReads >= want.Measured.LogicalReads {
		t.Fatalf("index seek (%v reads) not cheaper than scan (%v reads)",
			got.Measured.LogicalReads, want.Measured.LogicalReads)
	}
}

func planUses(p *optimizer.Plan, index string) bool {
	for _, ix := range p.IndexesUsed {
		if strings.EqualFold(ix, index) {
			return true
		}
	}
	return false
}

func TestRangeSeek(t *testing.T) {
	d, _ := testDB(t)
	mustExec(t, d, `CREATE INDEX ix_orders_created ON orders (created)`)
	res := mustExec(t, d, `SELECT id FROM orders WHERE created >= 100 AND created < 110`)
	if len(res.Rows) != 10 {
		t.Fatalf("want 10 rows, got %d", len(res.Rows))
	}
	res = mustExec(t, d, `SELECT id FROM orders WHERE created > 100 AND created <= 110`)
	if len(res.Rows) != 10 {
		t.Fatalf("strict bounds: want 10 rows, got %d", len(res.Rows))
	}
	res = mustExec(t, d, `SELECT id FROM orders WHERE created BETWEEN 10 AND 19`)
	if len(res.Rows) != 10 {
		t.Fatalf("BETWEEN: want 10 rows, got %d", len(res.Rows))
	}
}

func TestJoin(t *testing.T) {
	d, _ := testDB(t)
	res := mustExec(t, d, `SELECT o.id, c.name FROM orders o JOIN customers c ON o.customer_id = c.id WHERE c.region = 'east'`)
	// customers with odd id are east: 25 customers * 10 orders each.
	if len(res.Rows) != 250 {
		t.Fatalf("want 250 rows, got %d", len(res.Rows))
	}
	// With an index on the join column, NL join should win and results stay
	// identical.
	mustExec(t, d, `CREATE INDEX ix_cust_region ON customers (id) INCLUDE (region, name)`)
	res2 := mustExec(t, d, `SELECT o.id, c.name FROM orders o JOIN customers c ON o.customer_id = c.id WHERE c.region = 'east'`)
	if len(res2.Rows) != 250 {
		t.Fatalf("want 250 rows with index, got %d", len(res2.Rows))
	}
}

func TestGroupByAndAggregates(t *testing.T) {
	d, _ := testDB(t)
	res := mustExec(t, d, `SELECT status, COUNT(*), AVG(amount) FROM orders GROUP BY status`)
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 groups, got %d", len(res.Rows))
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].I
	}
	if total != 500 {
		t.Fatalf("group counts sum to %d, want 500", total)
	}
	res = mustExec(t, d, `SELECT COUNT(*), MIN(amount), MAX(amount) FROM orders`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 500 {
		t.Fatalf("scalar agg wrong: %v", res.Rows)
	}
}

func TestOrderByTop(t *testing.T) {
	d, _ := testDB(t)
	res := mustExec(t, d, `SELECT TOP 5 id, amount FROM orders ORDER BY amount DESC, id`)
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(res.Rows))
	}
	if res.Rows[0][1].F < res.Rows[4][1].F {
		t.Fatalf("not sorted descending: %v", res.Rows)
	}
}

func TestUpdateDeleteMaintainIndexes(t *testing.T) {
	d, _ := testDB(t)
	mustExec(t, d, `CREATE INDEX ix_orders_status ON orders (status)`)
	res := mustExec(t, d, `UPDATE orders SET status = 'archived' WHERE status = 'closed'`)
	if res.RowsAffected != 100 {
		t.Fatalf("want 100 updated, got %d", res.RowsAffected)
	}
	q := mustExec(t, d, `SELECT COUNT(*) FROM orders WHERE status = 'archived'`)
	if q.Rows[0][0].I != 100 {
		t.Fatalf("want 100 archived, got %v", q.Rows[0][0])
	}
	del := mustExec(t, d, `DELETE FROM orders WHERE status = 'archived'`)
	if del.RowsAffected != 100 {
		t.Fatalf("want 100 deleted, got %d", del.RowsAffected)
	}
	if n := d.RowCount("orders"); n != 400 {
		t.Fatalf("want 400 rows left, got %d", n)
	}
	q = mustExec(t, d, `SELECT COUNT(*) FROM orders WHERE status = 'archived'`)
	if q.Rows[0][0].I != 0 {
		t.Fatalf("archived rows remain after delete: %v", q.Rows[0][0])
	}
}

func TestMissingIndexEmission(t *testing.T) {
	d, _ := testDB(t)
	for i := 0; i < 10; i++ {
		mustExec(t, d, `SELECT id, amount FROM orders WHERE customer_id = 7 AND amount > 3`)
	}
	snap := d.MissingIndexDMV().Snapshot()
	if len(snap) == 0 {
		t.Fatal("expected missing-index candidates after repeated scans")
	}
	top := snap[0]
	if !strings.EqualFold(top.Candidate.Table, "orders") {
		t.Fatalf("candidate on wrong table: %+v", top.Candidate)
	}
	foundEq := false
	for _, c := range top.Candidate.Equality {
		if strings.EqualFold(c, "customer_id") {
			foundEq = true
		}
	}
	if !foundEq {
		t.Fatalf("customer_id should be an EQUALITY column: %+v", top.Candidate)
	}
	if top.Seeks < 10 {
		t.Fatalf("want >=10 seeks accumulated, got %d", top.Seeks)
	}
}

func TestMissingIndexResetOnFailoverAndSchemaChange(t *testing.T) {
	d, _ := testDB(t)
	mustExec(t, d, `SELECT id FROM orders WHERE customer_id = 3`)
	if d.MissingIndexDMV().Len() == 0 {
		t.Fatal("expected MI candidates")
	}
	d.Failover()
	if d.MissingIndexDMV().Len() != 0 {
		t.Fatal("failover must reset MI DMV")
	}
	mustExec(t, d, `SELECT id FROM orders WHERE customer_id = 3`)
	mustExec(t, d, `CREATE INDEX ix_tmp ON orders (created)`)
	if d.MissingIndexDMV().Len() != 0 {
		t.Fatal("schema change must reset MI DMV")
	}
}

func TestQueryStoreRecording(t *testing.T) {
	d, _ := testDB(t)
	for i := 0; i < 5; i++ {
		mustExec(t, d, `SELECT id FROM orders WHERE customer_id = 9`)
	}
	qs := d.QueryStore()
	if qs.Len() == 0 {
		t.Fatal("query store empty")
	}
	top := qs.TopByCPU(time.Time{}, 1)
	if len(top) != 1 {
		t.Fatal("no top query")
	}
	if top[0].Executions < 5 {
		t.Fatalf("want >=5 executions of top query, got %d", top[0].Executions)
	}
}

func TestCreateIndexLogFullAndResumable(t *testing.T) {
	clock := sim.NewClock()
	cfg := DefaultConfig("logtest", TierBasic, 7)
	cfg.LogSpaceBytes = 1 << 10 // 1KB: any real index overflows
	d := New(cfg, clock)
	mustExec(t, d, `CREATE TABLE big (id BIGINT NOT NULL, v BIGINT, PRIMARY KEY (id))`)
	for i := 0; i < 2000; i++ {
		mustExec(t, d, sprintf(`INSERT INTO big (id, v) VALUES (%d, %d)`, i, i))
	}
	def := schema.IndexDef{Name: "ix_big_v", Table: "big", KeyColumns: []string{"v"}}
	err := d.CreateIndex(def, IndexBuildOptions{Online: true})
	if !errors.Is(err, ErrLogFull) {
		t.Fatalf("want ErrLogFull, got %v", err)
	}
	if _, err := d.CreateIndexWithReport(def, IndexBuildOptions{Online: true, Resumable: true}); err != nil {
		t.Fatalf("resumable build failed: %v", err)
	}
	if _, ok := d.IndexDef("ix_big_v"); !ok {
		t.Fatal("index missing after resumable build")
	}
}

func TestDropIndexLowPriorityTimeoutAndRetry(t *testing.T) {
	d, clock := testDB(t)
	mustExec(t, d, `CREATE INDEX ix_drop ON orders (created)`)
	// A long-running query holds a shared schema lock for 10 minutes.
	d.Locks().HoldShared("orders", clock.Now().Add(10*time.Minute))
	err := d.DropIndex("ix_drop", DropIndexOptions{LowPriority: true, LockTimeout: time.Minute})
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	// The holder eventually releases; retry succeeds.
	clock.Advance(10 * time.Minute)
	if err := d.DropIndex("ix_drop", DropIndexOptions{LowPriority: true, LockTimeout: time.Minute}); err != nil {
		t.Fatalf("retry after release failed: %v", err)
	}
}

func TestNormalPriorityDropCreatesConvoy(t *testing.T) {
	d, clock := testDB(t)
	mustExec(t, d, `CREATE INDEX ix_convoy ON orders (created)`)
	d.Locks().HoldShared("orders", clock.Now().Add(5*time.Minute))
	done := make(chan error, 1)
	go func() {
		done <- d.DropIndex("ix_convoy", DropIndexOptions{LowPriority: false})
	}()
	// The drop enqueues FIFO; statements arriving now are blocked behind it.
	for !d.Locks().SharedBlocked("orders") {
		time.Sleep(time.Millisecond)
	}
	mustExec(t, d, `SELECT COUNT(*) FROM orders`)
	if d.ConvoyBlockedStatements() == 0 {
		t.Fatal("expected convoy-blocked statements behind normal-priority drop")
	}
	// Release the long query; the drop acquires and completes.
	clock.Advance(5 * time.Minute)
	if err := <-done; err != nil {
		t.Fatalf("drop failed: %v", err)
	}
	if d.Locks().SharedBlocked("orders") {
		t.Fatal("lock still blocked after drop completed")
	}
}

func TestDropColumnCascadesAutoIndexes(t *testing.T) {
	d, _ := testDB(t)
	auto := schema.IndexDef{Name: "auto_ix_amount", Table: "orders", KeyColumns: []string{"amount"}, AutoCreated: true}
	if err := d.CreateIndex(auto, IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
	user := schema.IndexDef{Name: "user_ix_status", Table: "orders", KeyColumns: []string{"status"}}
	if err := d.CreateIndex(user, IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
	// Dropping a column referenced by a user index is refused.
	if err := d.DropColumn("orders", "status"); !errors.Is(err, ErrColumnInUse) {
		t.Fatalf("want ErrColumnInUse, got %v", err)
	}
	// Dropping a column referenced only by an auto index cascades.
	if err := d.DropColumn("orders", "amount"); err != nil {
		t.Fatalf("cascade drop failed: %v", err)
	}
	if _, ok := d.IndexDef("auto_ix_amount"); ok {
		t.Fatal("auto index should have been force-dropped")
	}
	res := mustExec(t, d, `SELECT COUNT(*) FROM orders WHERE status = 'open'`)
	if res.Rows[0][0].I != 400 {
		t.Fatalf("table damaged by column drop: %v", res.Rows[0][0])
	}
}

func TestWhatIfSession(t *testing.T) {
	d, _ := testDB(t)
	stmt := `SELECT id, amount FROM orders WHERE customer_id = 12`
	base := mustExec(t, d, stmt)
	s := d.NewWhatIfSession()
	hypo := schema.IndexDef{Name: "hypo_cust", Table: "orders", KeyColumns: []string{"customer_id"}, IncludedColumns: []string{"amount"}}
	s.Catalog().AddHypothetical(hypo)
	parsed := mustParse(t, stmt)
	cost, plan, err := s.Cost(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if cost >= base.Plan.EstCost {
		t.Fatalf("hypothetical index did not reduce estimated cost: %v >= %v", cost, base.Plan.EstCost)
	}
	if !planUses(plan, "hypo_cust") {
		t.Fatalf("what-if plan should use the hypothetical index:\n%s", plan.Explain())
	}
	// The hypothetical index must never be used by real execution.
	res := mustExec(t, d, stmt)
	if planUses(res.Plan, "hypo_cust") {
		t.Fatal("executor used a hypothetical index")
	}
	// Budget exhaustion.
	s2 := d.NewWhatIfSession()
	s2.MaxOptimizerCalls = 1
	if _, _, err := s2.Cost(parsed); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Cost(parsed); !errors.Is(err, ErrWhatIfBudget) {
		t.Fatalf("want ErrWhatIfBudget, got %v", err)
	}
}

func TestBulkInsertAndSource(t *testing.T) {
	d, _ := testDB(t)
	d.RegisterBulkSource("orderfeed", func(n int64) []value.Row {
		rows := make([]value.Row, n)
		for i := int64(0); i < n; i++ {
			rows[i] = value.Row{
				value.NewInt(10000 + i), value.NewInt(i % 50), value.NewString("bulk"),
				value.NewFloat(1.0), value.NewInt(i),
			}
		}
		return rows
	})
	res := mustExec(t, d, `BULK INSERT orders FROM DATASOURCE orderfeed`)
	if res.RowsAffected != 1000 {
		t.Fatalf("want 1000 bulk rows, got %d", res.RowsAffected)
	}
	q := mustExec(t, d, `SELECT COUNT(*) FROM orders WHERE status = 'bulk'`)
	if q.Rows[0][0].I != 1000 {
		t.Fatalf("bulk rows not visible: %v", q.Rows[0][0])
	}
}

func TestUsageDMVTracksSeeksAndUpdates(t *testing.T) {
	d, _ := testDB(t)
	mustExec(t, d, `CREATE INDEX ix_usage ON orders (customer_id)`)
	mustExec(t, d, `SELECT id FROM orders WHERE customer_id = 3`)
	mustExec(t, d, `UPDATE orders SET customer_id = 99 WHERE id = 1`)
	u, ok := d.UsageDMV().Usage("ix_usage")
	if !ok {
		t.Fatal("no usage row")
	}
	if u.Seeks == 0 {
		t.Fatalf("expected seeks recorded: %+v", u)
	}
	if u.Updates == 0 {
		t.Fatalf("expected maintenance updates recorded: %+v", u)
	}
}

func mustParse(t *testing.T, sql string) sqlparser.Statement {
	t.Helper()
	s, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
