package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"autoindex/internal/schema"
	"autoindex/internal/value"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokPunct && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// MustParse parses src and panics on error; for tests and generators whose
// input is known-valid.
func MustParse(src string) Statement {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparser: %s (near position %d in %q)", fmt.Sprintf(format, args...), p.peek().pos, truncate(p.src, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf("expected %s, got %q", kw, t.text)
	}
	p.next()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind != tokPunct || t.text != s {
		return p.errf("expected %q, got %q", s, t.text)
	}
	p.next()
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "BULK":
		return p.parseBulkInsert()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	default:
		return nil, p.errf("unsupported statement %q", t.text)
	}
}

func (p *parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	s := &SelectStmt{}
	if p.acceptKeyword("TOP") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after TOP")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, p.errf("invalid TOP count %q", t.text)
		}
		p.next()
		s.Top = n
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	s.From = from
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		j, err := p.parseJoin()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, j)
	}
	if p.acceptKeyword("WHERE") {
		preds, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		s.Where = preds
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokPunct && t.text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if t.kind == tokKeyword {
		var agg AggFunc
		switch t.text {
		case "COUNT":
			agg = AggCount
		case "SUM":
			agg = AggSum
		case "AVG":
			agg = AggAvg
		case "MIN":
			agg = AggMin
		case "MAX":
			agg = AggMax
		}
		if agg != AggNone {
			p.next()
			if err := p.expectPunct("("); err != nil {
				return SelectItem{}, err
			}
			if agg == AggCount && p.acceptPunct("*") {
				if err := p.expectPunct(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Agg: AggCount}, nil
			}
			c, err := p.parseColRef()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectPunct(")"); err != nil {
				return SelectItem{}, err
			}
			if agg == AggCount {
				agg = AggCountCol
			}
			return SelectItem{Agg: agg, Col: c}, nil
		}
	}
	c, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: c}, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptPunct(".") {
		col, err := p.expectIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Column: col}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseJoin() (Join, error) {
	ref, err := p.parseTableRef()
	if err != nil {
		return Join{}, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return Join{}, err
	}
	left, err := p.parseColRef()
	if err != nil {
		return Join{}, err
	}
	t := p.peek()
	if t.kind != tokOp || t.text != "=" {
		return Join{}, p.errf("only equi-joins are supported, got %q", t.text)
	}
	p.next()
	right, err := p.parseColRef()
	if err != nil {
		return Join{}, err
	}
	return Join{Table: ref, Left: left, Right: right}, nil
}

func (p *parser) parseWhere() ([]Predicate, error) {
	var preds []Predicate
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred...)
		if !p.acceptKeyword("AND") {
			break
		}
	}
	return preds, nil
}

// parsePredicate parses one predicate; BETWEEN expands to two conjuncts.
func (p *parser) parsePredicate() ([]Predicate, error) {
	col, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return []Predicate{
			{Col: col, Op: OpGE, Val: lo},
			{Col: col, Op: OpLE, Val: hi},
		}, nil
	}
	t := p.peek()
	if t.kind != tokOp {
		return nil, p.errf("expected comparison operator, got %q", t.text)
	}
	var op CompareOp
	switch t.text {
	case "=":
		op = OpEQ
	case "<>", "!=":
		op = OpNE
	case "<":
		op = OpLT
	case "<=":
		op = OpLE
	case ">":
		op = OpGT
	case ">=":
		op = OpGE
	default:
		return nil, p.errf("unsupported operator %q", t.text)
	}
	p.next()
	v, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return []Predicate{{Col: col, Op: op, Val: v}}, nil
}

func (p *parser) parseLiteral() (value.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Value{}, p.errf("bad float %q", t.text)
			}
			return value.NewFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Value{}, p.errf("bad integer %q", t.text)
		}
		return value.NewInt(i), nil
	case tokString:
		p.next()
		return value.NewString(t.text), nil
	case tokKeyword:
		if t.text == "NULL" {
			p.next()
			return value.NewNull(), nil
		}
	}
	return value.Value{}, p.errf("expected literal, got %q", t.text)
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.acceptPunct("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, c)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row value.Row
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptPunct(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokOp || t.text != "=" {
			return nil, p.errf("expected = in SET")
		}
		p.next()
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Val: v})
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		preds, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		stmt.Where = preds
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		preds, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		stmt.Where = preds
	}
	return stmt, nil
}

func (p *parser) parseBulkInsert() (Statement, error) {
	p.next() // BULK
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("DATASOURCE"); err != nil {
		return nil, err
	}
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &BulkInsertStmt{Table: table, Source: src, RowEstimate: 1000}, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.acceptKeyword("UNIQUE")
	kind := schema.NonClustered
	if p.acceptKeyword("CLUSTERED") {
		kind = schema.Clustered
	} else {
		p.acceptKeyword("NONCLUSTERED")
	}
	if p.acceptKeyword("INDEX") {
		return p.parseCreateIndex(unique, kind)
	}
	if unique || kind == schema.Clustered {
		return nil, p.errf("expected INDEX")
	}
	if p.acceptKeyword("TABLE") {
		return p.parseCreateTable()
	}
	return nil, p.errf("expected TABLE or INDEX after CREATE")
}

func (p *parser) parseCreateIndex(unique bool, kind schema.IndexKind) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	def := schema.IndexDef{Name: name, Table: table, Kind: kind, Unique: unique}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// Optional ASC/DESC per key column; ordering direction is parsed
		// and discarded (indexes scan both ways).
		p.acceptKeyword("ASC")
		p.acceptKeyword("DESC")
		def.KeyColumns = append(def.KeyColumns, c)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("INCLUDE") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			def.IncludedColumns = append(def.IncludedColumns, c)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	stmt := &CreateIndexStmt{Index: def}
	if p.acceptKeyword("WITH") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ONLINE"); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokOp || t.text != "=" {
			return nil, p.errf("expected = in WITH (ONLINE = ON)")
		}
		p.next()
		onTok := p.peek()
		if onTok.kind != tokIdent && onTok.kind != tokKeyword {
			return nil, p.errf("expected ON or OFF, got %q", onTok.text)
		}
		p.next()
		stmt.Online = strings.EqualFold(onTok.text, "ON")
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := schema.Table{Name: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				t.PrimaryKey = append(t.PrimaryKey, c)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		} else {
			colName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typeTok := p.next()
			if typeTok.kind != tokIdent && typeTok.kind != tokKeyword {
				return nil, p.errf("expected type for column %s", colName)
			}
			kind, err := value.ParseKind(typeTok.text)
			if err != nil {
				return nil, p.errf("column %s: %v", colName, err)
			}
			col := schema.Column{Name: colName, Kind: kind, Nullable: true}
			if p.acceptKeyword("NOT") {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				col.Nullable = false
			} else {
				p.acceptKeyword("NULL")
			}
			t.Columns = append(t.Columns, col)
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Table: t}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropIndexStmt{Name: name, Table: table}, nil
}
