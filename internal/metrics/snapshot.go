package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// BucketSnapshot is one histogram bucket in a snapshot. LE is the
// inclusive upper bound as a decimal string, "+Inf" for the overflow
// bucket; Count is non-cumulative (observations in this bucket alone).
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// MetricSnapshot is one metric's value at snapshot time. Counter and
// gauge use Value; histograms use Count/Sum/Buckets.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Kind    string           `json:"kind"`
	Help    string           `json:"help"`
	Value   *int64           `json:"value,omitempty"`
	Count   *int64           `json:"count,omitempty"`
	Sum     *int64           `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot captures every cataloged metric in name order. Metrics the
// run never touched appear with zero values, so the shape of the output
// depends only on the catalog, not on which code paths executed.
// Volatile metrics (scheduling-dependent values) are included only when
// includeVolatile is set; the deterministic consumers (fleetsim
// -metrics-out, the determinism tests) pass false.
func (r *Registry) Snapshot(includeVolatile bool) []MetricSnapshot {
	out := []MetricSnapshot{}
	for _, d := range Descs() {
		if d.volatile && !includeVolatile {
			continue
		}
		s := MetricSnapshot{Name: d.name, Kind: d.kind.String(), Help: d.help}
		switch d.kind {
		case KindCounter:
			v := int64(0)
			if r != nil {
				r.mu.RLock()
				c := r.counters[d]
				r.mu.RUnlock()
				v = c.Value()
			}
			s.Value = &v
		case KindGauge:
			v := int64(0)
			if r != nil {
				r.mu.RLock()
				g := r.gauges[d]
				r.mu.RUnlock()
				v = g.Value()
			}
			s.Value = &v
		case KindHistogram:
			var h *Histogram
			if r != nil {
				r.mu.RLock()
				h = r.histograms[d]
				r.mu.RUnlock()
			}
			count, sum := h.Count(), h.Sum()
			s.Count, s.Sum = &count, &sum
			s.Buckets = make([]BucketSnapshot, 0, len(d.bounds)+1)
			for i, b := range d.bounds {
				n := int64(0)
				if h != nil {
					n = h.counts[i].Load()
				}
				s.Buckets = append(s.Buckets, BucketSnapshot{LE: strconv.FormatInt(b, 10), Count: n})
			}
			n := int64(0)
			if h != nil {
				n = h.counts[len(d.bounds)].Load()
			}
			s.Buckets = append(s.Buckets, BucketSnapshot{LE: "+Inf", Count: n})
		}
		out = append(out, s)
	}
	return out
}

// MarshalDeterministic renders the non-volatile snapshot as indented
// JSON with a trailing newline. For a given seed the bytes are
// identical at any fleet worker count — this is what fleetsim
// -metrics-out writes and what the determinism test compares.
func (r *Registry) MarshalDeterministic() ([]byte, error) {
	b, err := json.MarshalIndent(struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{r.Snapshot(false)}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteText renders every metric — volatile included — in a
// Prometheus-style text exposition for the /metrics endpoint.
// Histogram buckets are cumulative here, matching the convention
// scrapers expect.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot(true) {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", s.Name, s.Help, s.Name, s.Kind); err != nil {
			return err
		}
		switch s.Kind {
		case "histogram":
			cum := int64(0)
			for _, b := range s.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, b.LE, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", s.Name, *s.Sum, s.Name, *s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.Name, *s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
