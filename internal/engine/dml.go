package engine

import (
	"fmt"
	"sort"
	"strings"

	"autoindex/internal/executor"
	"autoindex/internal/optimizer"
	"autoindex/internal/sqlparser"
	"autoindex/internal/storage"
	"autoindex/internal/value"
)

// tableIndexes returns the indexes on the named table in sorted-name
// order. DML maintenance charges the meter per index, and float addition
// is not associative — iterating the d.indexes map directly would make
// measured CPU wobble in its last bits from run to run. Callers must
// hold d.mu.
func (d *Database) tableIndexes(tableName string) []*indexData {
	var out []*indexData
	for _, ix := range d.indexes {
		if strings.EqualFold(ix.def.Table, tableName) {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].def.Name < out[j].def.Name })
	return out
}

// execInsert inserts literal rows, maintaining every secondary index (the
// maintenance cost the MI recommender famously ignores, §8.1).
func (d *Database) execInsert(s *sqlparser.InsertStmt, meter *executor.Meter) (int64, error) {
	t, ok := d.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q", s.Table)
	}
	ords, err := insertOrdinals(t, s.Columns)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, vals := range s.Rows {
		if len(vals) != len(ords) {
			return n, fmt.Errorf("engine: INSERT expects %d values, got %d", len(ords), len(vals))
		}
		row := make(value.Row, len(t.def.Columns))
		for i := range row {
			row[i] = value.NewNull()
		}
		for i, o := range ords {
			row[o] = coerce(vals[i], t.def.Columns[o].Kind)
		}
		if err := d.insertRowLocked(t, row, meter); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func insertOrdinals(t *tableData, cols []string) ([]int, error) {
	if len(cols) == 0 {
		ords := make([]int, len(t.def.Columns))
		for i := range ords {
			ords[i] = i
		}
		return ords, nil
	}
	ords := make([]int, len(cols))
	for i, c := range cols {
		o := t.def.ColumnIndex(c)
		if o < 0 {
			return nil, fmt.Errorf("engine: column %q not in table %q", c, t.def.Name)
		}
		ords[i] = o
	}
	return ords, nil
}

// coerce converts compatible literal kinds to the column's kind.
func coerce(v value.Value, k value.Kind) value.Value {
	if v.IsNull() || v.K == k {
		return v
	}
	switch {
	case v.K == value.Int && k == value.Float:
		return value.NewFloat(float64(v.I))
	case v.K == value.Float && k == value.Int:
		return value.NewInt(int64(v.F))
	case v.K == value.Int && k == value.Time:
		return value.Value{K: value.Time, I: v.I}
	case v.K == value.Int && k == value.Bool:
		return value.NewBool(v.I != 0)
	default:
		return v
	}
}

// insertRowLocked inserts one fully-formed row; caller holds d.mu.
func (d *Database) insertRowLocked(t *tableData, row value.Row, meter *executor.Meter) error {
	var loc value.Key
	if t.clustered != nil {
		ords := t.pkOrdinals()
		key := make(value.Key, len(ords))
		for i, o := range ords {
			if row[o].IsNull() {
				return fmt.Errorf("engine: NULL primary key in table %q", t.def.Name)
			}
			key[i] = row[o]
		}
		if _, exists := t.clustered.Get(key); exists {
			return fmt.Errorf("engine: duplicate primary key %v in table %q", key, t.def.Name)
		}
		t.clustered.Insert(key, row)
		meter.ChargePageWrites(float64(t.clustered.Height()))
		loc = key
	} else {
		rid := t.heap.Insert(row)
		meter.ChargePageWrites(1)
		loc = value.Key{value.NewInt(int64(rid))}
	}
	t.rowCount++
	for _, ix := range d.tableIndexes(t.def.Name) {
		k, p := ix.entryFor(t, row, loc)
		ix.tree.Insert(k, p)
		meter.ChargePageWrites(float64(ix.tree.Height()))
		meter.ChargeRows(1)
		d.usage.RecordUpdate(ix.def.Name, t.def.Name)
	}
	return nil
}

// execBulkInsert loads rows from a registered bulk source.
func (d *Database) execBulkInsert(s *sqlparser.BulkInsertStmt, meter *executor.Meter) (int64, error) {
	t, ok := d.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q", s.Table)
	}
	src, ok := d.bulkSources[strings.ToLower(s.Source)]
	if !ok {
		return 0, fmt.Errorf("engine: no bulk data source %q registered", s.Source)
	}
	rows := src(s.RowEstimate)
	var n int64
	for _, row := range rows {
		if len(row) != len(t.def.Columns) {
			return n, fmt.Errorf("engine: bulk row width %d != table width %d", len(row), len(t.def.Columns))
		}
		for i := range row {
			row[i] = coerce(row[i], t.def.Columns[i].Kind)
		}
		if err := d.insertRowLocked(t, row, meter); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// matchedRow pairs a base row with its locator.
type matchedRow struct {
	row value.Row // base columns only (layout row trimmed of the RID)
	loc value.Key
	rid storage.RID
}

// collectMatches runs the access child of a write plan and extracts base
// rows + locators.
func (d *Database) collectMatches(access *optimizer.Node, t *tableData, meter *executor.Meter) ([]matchedRow, error) {
	src, lay, err := d.compile(access, meter)
	if err != nil {
		return nil, err
	}
	ncols := len(t.def.Columns)
	ridIdx := lay.find("", ridColName)
	var out []matchedRow
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		m := matchedRow{row: append(value.Row(nil), r[:ncols]...)}
		if t.clustered != nil {
			ords := t.pkOrdinals()
			k := make(value.Key, len(ords))
			for i, o := range ords {
				k[i] = m.row[o]
			}
			m.loc = k
		} else {
			if ridIdx < 0 {
				return nil, fmt.Errorf("engine: heap write plan lost its RID column")
			}
			m.rid = storage.RID(r[ridIdx].I)
			m.loc = value.Key{r[ridIdx]}
		}
		out = append(out, m)
	}
	return out, nil
}

// execUpdate applies SET assignments to matching rows, maintaining only
// the indexes that contain a modified column.
func (d *Database) execUpdate(root *optimizer.Node, s *sqlparser.UpdateStmt, meter *executor.Meter) (int64, error) {
	t, ok := d.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q", s.Table)
	}
	matches, err := d.collectMatches(root.Children[0], t, meter)
	if err != nil {
		return 0, err
	}
	setOrds := make([]int, len(s.Set))
	for i, a := range s.Set {
		o := t.def.ColumnIndex(a.Column)
		if o < 0 {
			return 0, fmt.Errorf("engine: column %q not in table %q", a.Column, t.def.Name)
		}
		setOrds[i] = o
	}
	pkTouched := false
	for _, a := range s.Set {
		for _, pk := range t.def.PrimaryKey {
			if strings.EqualFold(a.Column, pk) {
				pkTouched = true
			}
		}
	}
	var affected []*indexData
	for _, ix := range d.tableIndexes(t.def.Name) {
		for _, a := range s.Set {
			if ix.def.HasColumn(a.Column) {
				affected = append(affected, ix)
				break
			}
		}
	}
	var n int64
	for _, m := range matches {
		newRow := m.row.Clone()
		for i, a := range s.Set {
			newRow[setOrds[i]] = coerce(a.Val, t.def.Columns[setOrds[i]].Kind)
		}
		newLoc := m.loc
		// Base write.
		if t.clustered != nil {
			if pkTouched {
				t.clustered.Delete(m.loc)
				ords := t.pkOrdinals()
				k := make(value.Key, len(ords))
				for i, o := range ords {
					k[i] = newRow[o]
				}
				if _, exists := t.clustered.Get(k); exists {
					return n, fmt.Errorf("engine: duplicate primary key %v on update", k)
				}
				t.clustered.Insert(k, newRow)
				newLoc = k
				meter.ChargePageWrites(2 * float64(t.clustered.Height()))
			} else {
				t.clustered.Insert(m.loc, newRow)
				meter.ChargePageWrites(float64(t.clustered.Height()))
			}
		} else {
			if err := t.heap.Update(m.rid, newRow); err != nil {
				return n, err
			}
			meter.ChargePageWrites(1)
		}
		// Index maintenance. When the PK (locator) changes, every index
		// entry moves; otherwise only affected indexes do.
		maintain := affected
		if pkTouched {
			maintain = d.tableIndexes(t.def.Name)
		}
		for _, ix := range maintain {
			oldK, _ := ix.entryFor(t, m.row, m.loc)
			ix.tree.Delete(oldK)
			newK, newP := ix.entryFor(t, newRow, newLoc)
			ix.tree.Insert(newK, newP)
			meter.ChargePageWrites(2 * float64(ix.tree.Height()))
			meter.ChargeRows(1)
			d.usage.RecordUpdate(ix.def.Name, t.def.Name)
		}
		n++
	}
	return n, nil
}

// execDelete removes matching rows and all their index entries.
func (d *Database) execDelete(root *optimizer.Node, s *sqlparser.DeleteStmt, meter *executor.Meter) (int64, error) {
	t, ok := d.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q", s.Table)
	}
	matches, err := d.collectMatches(root.Children[0], t, meter)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, m := range matches {
		if t.clustered != nil {
			t.clustered.Delete(m.loc)
			meter.ChargePageWrites(float64(t.clustered.Height()))
		} else {
			if err := t.heap.Delete(m.rid); err != nil {
				continue
			}
			meter.ChargePageWrites(1)
		}
		t.rowCount--
		for _, ix := range d.tableIndexes(t.def.Name) {
			k, _ := ix.entryFor(t, m.row, m.loc)
			ix.tree.Delete(k)
			meter.ChargePageWrites(float64(ix.tree.Height()))
			meter.ChargeRows(1)
			d.usage.RecordUpdate(ix.def.Name, t.def.Name)
		}
		n++
	}
	return n, nil
}
