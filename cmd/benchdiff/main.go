// Command benchdiff compares two BENCH_fleet.json files (see
// internal/fleet/bench_test.go, which rewrites the file on every
// `make bench`) and fails when the new run regressed past a wall-clock
// threshold. It is the teeth of the CI bench gate:
//
//	benchdiff -threshold 1.25 BENCH_fleet.json.baseline BENCH_fleet.json
//
// The gate verdict compares the fastest worker count in each file:
// min(new sec_per_op) / min(old sec_per_op) must stay at or under
// -threshold (default 1.25, a 25% regression budget). Minimum-of-runs
// is the standard noise reducer for one-shot benchmarks — each file
// samples the same workload at several worker counts, and pairwise
// per-worker ratios would multiply the chance of a spurious failure
// on a noisy CI machine. Per-worker rows are still printed for
// inspection. The exit status is 1 on a regression past the
// threshold, 2 on usage or parse errors, 0 otherwise. Improvements
// are reported but never fail the gate; ratcheting the committed
// baseline down is a deliberate, human act (see EXPERIMENTS.md
// "Benchmark ratchet").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchFile struct {
	Benchmark string `json:"benchmark"`
	Timings   []struct {
		Workers  int     `json:"workers"`
		SecPerOp float64 `json:"sec_per_op"`
	} `json:"timings"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Timings) == 0 {
		return nil, fmt.Errorf("%s: no timings", path)
	}
	for _, t := range b.Timings {
		if t.SecPerOp <= 0 {
			return nil, fmt.Errorf("%s: non-positive sec_per_op for workers=%d", path, t.Workers)
		}
	}
	return &b, nil
}

func minSec(b *benchFile) float64 {
	best := b.Timings[0].SecPerOp
	for _, t := range b.Timings[1:] {
		if t.SecPerOp < best {
			best = t.SecPerOp
		}
	}
	return best
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 1.25, "max allowed new/old ratio of the fastest worker count's sec_per_op")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold R] old.json new.json")
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintln(stderr, "benchdiff: -threshold must be positive")
		return 2
	}
	oldB, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newB, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	// Per-worker rows are informational: on a noisy host individual
	// counts swing far more than the per-file minimum.
	oldByWorkers := make(map[int]float64)
	for _, t := range oldB.Timings {
		oldByWorkers[t.Workers] = t.SecPerOp
	}
	for _, t := range newB.Timings {
		oldSec, ok := oldByWorkers[t.Workers]
		if !ok {
			fmt.Fprintf(stdout, "workers=%-3d %10.3fs  (new worker count, no baseline)\n", t.Workers, t.SecPerOp)
			continue
		}
		fmt.Fprintf(stdout, "workers=%-3d %10.3fs -> %10.3fs  ratio %.3f\n",
			t.Workers, oldSec, t.SecPerOp, t.SecPerOp/oldSec)
	}

	oldMin, newMin := minSec(oldB), minSec(newB)
	ratio := newMin / oldMin
	fmt.Fprintf(stdout, "gate: fastest %.3fs -> %.3fs  ratio %.3f (limit %.2f)\n",
		oldMin, newMin, ratio, *threshold)
	if ratio > *threshold {
		fmt.Fprintf(stdout, "FAIL: wall-clock regression beyond %.2fx against %s\n", *threshold, fs.Arg(0))
		return 1
	}
	fmt.Fprintf(stdout, "ok: fastest run within %.2fx of baseline\n", *threshold)
	return 0
}
